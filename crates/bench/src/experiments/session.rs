//! A memoizing run cache so `repro all` never repeats a training run.

use std::cell::RefCell;
use std::collections::HashMap;

use cascade_exec::PipelineConfig;
use cascade_models::ModelConfig;
use cascade_tgraph::{Dataset, SynthConfig};

use crate::harness::{Harness, RunOutcome, StrategyKind};

/// Shared state for one `repro` invocation: the harness knobs, generated
/// datasets, and memoized training runs.
pub struct Session {
    harness: Harness,
    datasets: RefCell<HashMap<String, Dataset>>,
    runs: RefCell<HashMap<String, RunOutcome>>,
}

impl Session {
    /// Creates a session over the given harness.
    pub fn new(harness: Harness) -> Self {
        Session {
            harness,
            datasets: RefCell::new(HashMap::new()),
            runs: RefCell::new(HashMap::new()),
        }
    }

    /// The harness knobs.
    pub fn harness(&self) -> &Harness {
        &self.harness
    }

    /// The scaled dataset for a profile name (generated once).
    ///
    /// # Panics
    ///
    /// Panics on unknown profile names.
    pub fn dataset(&self, name: &str) -> Dataset {
        if let Some(d) = self.datasets.borrow().get(name) {
            return d.clone();
        }
        let profile =
            profile_by_name(name).unwrap_or_else(|| panic!("unknown dataset profile '{}'", name));
        let d = self.harness.dataset(profile);
        self.datasets
            .borrow_mut()
            .insert(name.to_string(), d.clone());
        d
    }

    /// Runs (or replays) one (dataset, model, strategy) training.
    pub fn run(&self, dataset: &str, model: ModelConfig, strategy: &StrategyKind) -> RunOutcome {
        let key = format!("{}|{}|{}", dataset, model.name, strategy.label());
        if let Some(o) = self.runs.borrow().get(&key) {
            return o.clone();
        }
        eprintln!("  [run] {}", key);
        let data = self.dataset(dataset);
        let out = self.harness.run(&data, model, strategy);
        self.runs.borrow_mut().insert(key, out.clone());
        out
    }

    /// Runs (or replays) one training through the pipelined executor.
    pub fn run_pipelined(
        &self,
        dataset: &str,
        model: ModelConfig,
        strategy: &StrategyKind,
        pcfg: &PipelineConfig,
    ) -> RunOutcome {
        let key = format!(
            "{}|{}|{}|pipe(d{},s{})",
            dataset,
            model.name,
            strategy.label(),
            pcfg.depth,
            pcfg.effective_staleness()
        );
        if let Some(o) = self.runs.borrow().get(&key) {
            return o.clone();
        }
        eprintln!("  [run] {}", key);
        let data = self.dataset(dataset);
        let out = self.harness.run_pipelined(&data, model, strategy, pcfg);
        self.runs.borrow_mut().insert(key, out.clone());
        out
    }

    /// Number of memoized runs.
    pub fn cached_runs(&self) -> usize {
        self.runs.borrow().len()
    }
}

/// Looks up a Table 2 profile by display name.
pub fn profile_by_name(name: &str) -> Option<SynthConfig> {
    match name {
        "WIKI" => Some(SynthConfig::wiki()),
        "REDDIT" => Some(SynthConfig::reddit()),
        "MOOC" => Some(SynthConfig::mooc()),
        "WIKI-TALK" => Some(SynthConfig::wiki_talk()),
        "SX-FULL" => Some(SynthConfig::sx_full()),
        "GDELT" => Some(SynthConfig::gdelt()),
        "MAG" => Some(SynthConfig::mag()),
        _ => None,
    }
}

/// The moderate dataset names, in the paper's plotting order.
pub const MODERATE: &[&str] = &["WIKI", "REDDIT", "MOOC", "WIKI-TALK", "SX-FULL"];

/// The billion-scale dataset names.
pub const LARGE: &[&str] = &["GDELT", "MAG"];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_session() -> Session {
        Session::new(Harness {
            moderate_events: 400,
            large_events: 500,
            epochs: 1,
            preset_batch: 32,
            memory_dim: 8,
            time_dim: 4,
            feature_dim: 4,
            neighbor_cap: 2,
            ..Harness::default()
        })
    }

    #[test]
    fn datasets_are_cached() {
        let s = tiny_session();
        let a = s.dataset("WIKI");
        let b = s.dataset("WIKI");
        assert_eq!(a.num_events(), b.num_events());
    }

    #[test]
    fn runs_are_memoized() {
        let s = tiny_session();
        let _ = s.run("WIKI", ModelConfig::jodie(), &StrategyKind::Tgl);
        assert_eq!(s.cached_runs(), 1);
        let _ = s.run("WIKI", ModelConfig::jodie(), &StrategyKind::Tgl);
        assert_eq!(s.cached_runs(), 1);
    }

    #[test]
    fn profiles_resolve() {
        for name in MODERATE.iter().chain(LARGE) {
            assert!(profile_by_name(name).is_some(), "{}", name);
        }
        assert!(profile_by_name("NOPE").is_none());
    }
}
