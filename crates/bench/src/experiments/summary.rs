//! `repro summary` — the headline reproduction table (reuses the
//! Figure 10/11 runs, so it is nearly free after `repro all`).

use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::TextTable;

use super::session::{Session, MODERATE};

/// The paper's headline numbers next to this reproduction's.
pub fn summary(session: &Session) -> String {
    let mut speedups = Vec::new();
    let mut norms = Vec::new();
    let mut per_dataset: Vec<(String, f64)> = Vec::new();

    for name in MODERATE {
        let mut ds_speedups = Vec::new();
        for model in ModelConfig::all() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let s = tgl.report.modeled_time.as_secs_f64() / cas.report.modeled_time.as_secs_f64();
            speedups.push(s);
            ds_speedups.push(s);
            norms.push(cas.report.val_loss as f64 / tgl.report.val_loss as f64);
        }
        let geo = geomean(&ds_speedups);
        per_dataset.push((name.to_string(), geo));
    }

    let mean = geomean(&speedups);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean_loss = norms.iter().sum::<f64>() / norms.len() as f64;

    let mut t = TextTable::new(&["Quantity", "Paper", "This reproduction"]);
    t.row(&[
        "Mean Cascade speedup vs TGL".into(),
        "2.3x".to_string(),
        format!("{:.2}x", mean),
    ]);
    t.row(&[
        "Speedup range".into(),
        "1.3x - 5.1x".to_string(),
        format!("{:.2}x - {:.2}x", min, max),
    ]);
    t.row(&[
        "Validation loss vs TGL".into(),
        "99.4%".to_string(),
        format!("{:.1}%", mean_loss * 100.0),
    ]);

    let mut d = TextTable::new(&["Dataset", "Geomean speedup"]);
    let mut ordering: Vec<(String, f64)> = per_dataset.clone();
    ordering.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, s) in &per_dataset {
        d.row(&[name.clone(), format!("{:.2}x", s)]);
    }
    let order: Vec<&str> = ordering.iter().map(|(n, _)| n.as_str()).collect();

    format!(
        "Headline reproduction summary (Figures 10/11)\n{}\n\
         Per-dataset speedups (paper ordering: sparse gains most)\n{}\n\
         Speedup ordering observed: {}\n",
        t,
        d,
        order.join(" > ")
    )
}

fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}
