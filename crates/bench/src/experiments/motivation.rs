//! The motivation measurements: Figure 2 (batch-size trade-off),
//! Figure 3 (intra-batch degree distribution), Figure 5 (stable-node
//! ratio), and the §3.1 utilization proxy.

use cascade_core::{train_with_observer, FixedBatching, SgFilter, UtilizationProxy};
use cascade_models::ModelConfig;
use cascade_tgraph::{batch_degree_histogram, max_batch_degree, SynthConfig};

use crate::harness::StrategyKind;
use crate::table::{f2, f3, pct, TextTable};

use super::session::{Session, MODERATE};

/// The scaled analogues of the paper's 900..6000 batch-size sweep,
/// relative to the harness preset.
fn batch_sweep(preset: usize) -> Vec<usize> {
    // 900 -> 2000, 3000, 4000, 5000, 6000 in the paper: ratios 1..6.67.
    [1.0, 2.2, 3.3, 4.4, 5.6, 6.7]
        .iter()
        .map(|r| ((preset as f64) * r) as usize)
        .collect()
}

/// Figure 2: normalized training latency and validation loss across batch
/// sizes for TGN and JODIE on all five datasets.
pub fn fig2(session: &Session) -> String {
    let preset = session.harness().preset_batch;
    let mut t = TextTable::new(&["Dataset", "Model", "BS", "NormLatency", "NormValLoss"]);
    for name in MODERATE {
        for model in [ModelConfig::tgn(), ModelConfig::jodie()] {
            let mut base: Option<(f64, f64)> = None;
            for bs in batch_sweep(preset) {
                let out = if bs == preset {
                    session.run(name, model.clone(), &StrategyKind::Tgl)
                } else {
                    session.run(name, model.clone(), &StrategyKind::TglLb(bs))
                };
                let lat = out.report.modeled_time.as_secs_f64();
                let loss = out.report.val_loss as f64;
                let (bl, bv) = *base.get_or_insert((lat, loss));
                t.row(&[
                    name.to_string(),
                    model.name.to_string(),
                    bs.to_string(),
                    f2(lat / bl),
                    f2(loss / bv),
                ]);
            }
        }
    }
    format!(
        "Figure 2: batch-size trade-off (normalized to BS={})\n\
         Paper shape: larger batches cut latency but inflate validation loss.\n{}",
        preset, t
    )
}

/// Figure 3: distribution of per-node event counts inside 900-event
/// batches. This is a pure dataset statistic, so it runs on much larger
/// scaled instances than the training experiments.
pub fn fig3(_session: &Session) -> String {
    let buckets = [25, 50, 75, 100, 125];
    let mut t = TextTable::new(&[
        "Dataset", "0-25", "25-50", "50-75", "75-100", "100-125", ">125", "MaxDeg",
    ]);
    for profile in SynthConfig::moderate_profiles() {
        // Large-enough instance for a faithful histogram at batch 900.
        let target = 60_000.0_f64.min(profile.num_events as f64);
        let data = profile
            .clone()
            .with_scale(target / profile.num_events as f64)
            .with_feature_dim(0)
            .generate(7);
        let h = batch_degree_histogram(data.stream(), 900, &buckets);
        let maxd = max_batch_degree(data.stream(), 900);
        let mut row = vec![profile.name.clone()];
        row.extend(h.iter().map(|&f| pct(f)));
        row.push(maxd.to_string());
        t.row(&row);
    }
    format!(
        "Figure 3: per-node event counts inside batches of 900\n\
         Paper shape: the overwhelming majority of nodes see 0-25 events; \
         hubs peak at 140-175.\n{}",
        t
    )
}

/// Figure 5: ratio of stable node updates (cosine ≥ 0.9) per epoch while
/// training TGN and JODIE conventionally.
pub fn fig5(session: &Session) -> String {
    let h = session.harness();
    let epoch_marks = [0usize, h.epochs.max(4) / 2, h.epochs.max(4) - 1];
    let epochs = h.epochs.max(4);
    let mut t = TextTable::new(&["Dataset", "Model", "Epoch", "StableRatio"]);
    for name in MODERATE {
        let data = session.dataset(name);
        for model in [ModelConfig::tgn(), ModelConfig::jodie()] {
            let mut m = h.build_model(&data, model.clone(), false);
            let mut strat = FixedBatching::new(h.preset_batch);
            let mut filter = SgFilter::new(data.num_nodes(), 0.9);
            let mut ratios = vec![0.0f64; epochs];
            let mut last_epoch = 0usize;
            let cfg = cascade_core::TrainConfig {
                epochs,
                ..h.train_cfg()
            };
            let _ = train_with_observer(&mut m, &data, &mut strat, &cfg, &mut |epoch, deltas| {
                if epoch != last_epoch {
                    ratios[last_epoch] = filter.epoch_stable_ratio();
                    filter.reset();
                    last_epoch = epoch;
                }
                filter.observe(deltas);
            });
            ratios[last_epoch] = filter.epoch_stable_ratio();
            for &e in &epoch_marks {
                t.row(&[
                    name.to_string(),
                    model.name.to_string(),
                    e.to_string(),
                    pct(ratios[e.min(epochs - 1)]),
                ]);
            }
        }
    }
    format!(
        "Figure 5: stable node-update ratio (θ_sim = 0.9) across epochs\n\
         Paper shape: ratios grow with training; >84% average once converged.\n{}",
        t
    )
}

/// §3.1 hardware-utilization proxy at the preset and enlarged batch
/// sizes.
pub fn utilization(session: &Session) -> String {
    let u = UtilizationProxy::default();
    let preset = session.harness().preset_batch as f64;
    let mut t = TextTable::new(&["Batch (paper-equivalent)", "SM util", "Mem util"]);
    for (label, b) in [("900", 900.0), ("6000", 6000.0), ("preset", preset)] {
        t.row(&[
            label.to_string(),
            f3(u.sm_utilization(b)),
            f3(u.mem_utilization(b)),
        ]);
    }
    format!(
        "§3.1 utilization proxy (calibrated to the paper's measurements:\n\
         BS=900 -> 17.2%/15.2%, BS=6000 -> 39.8%/34.2%)\n{}",
        t
    )
}
