//! One module per reproduced artifact; see DESIGN.md §4 for the index.

mod ablation;
mod analysis;
mod motivation;
mod overall;
mod pipeline;
mod prior;
mod scale;
mod session;
mod summary;
mod tables;

pub use session::Session;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "table1", "table2", "util", "fig2", "fig3", "fig5", "fig10", "fig11", "fig12a", "fig12b",
    "fig12c", "fig12d", "fig13a", "fig13b", "fig13c", "fig14a", "fig14b", "fig14c", "fig15",
    "fig16", "ablation", "pipeline", "summary",
];

/// Runs one experiment by id, returning its formatted report.
///
/// # Errors
///
/// Returns an error message for unknown ids.
pub fn run(session: &Session, id: &str) -> Result<String, String> {
    match id {
        "table1" => Ok(tables::table1()),
        "table2" => Ok(tables::table2(session)),
        "util" => Ok(motivation::utilization(session)),
        "fig2" => Ok(motivation::fig2(session)),
        "fig3" => Ok(motivation::fig3(session)),
        "fig5" => Ok(motivation::fig5(session)),
        "fig10" => Ok(overall::fig10(session)),
        "fig11" => Ok(overall::fig11(session)),
        "fig12a" => Ok(overall::fig12a(session)),
        "fig12b" => Ok(overall::fig12b(session)),
        "fig12c" => Ok(overall::fig12c(session)),
        "fig12d" => Ok(overall::fig12d(session)),
        "fig13a" => Ok(analysis::fig13a(session)),
        "fig13b" => Ok(analysis::fig13b(session)),
        "fig13c" => Ok(analysis::fig13c(session)),
        "fig14a" => Ok(scale::fig14a(session)),
        "fig14b" => Ok(scale::fig14b(session)),
        "fig14c" => Ok(scale::fig14c(session)),
        "fig15" => Ok(prior::fig15(session)),
        "fig16" => Ok(prior::fig16(session)),
        "ablation" => Ok(ablation::ablation(session)),
        "pipeline" => Ok(pipeline::pipeline(session)),
        "summary" => Ok(summary::summary(session)),
        other => Err(format!(
            "unknown experiment '{}'; known: {}",
            other,
            ALL.join(", ")
        )),
    }
}
