//! # cascade-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Cascade paper's evaluation (§3, §5) on the scaled synthetic substrate.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p cascade-bench --bin repro -- all
//! ```
//!
//! or a single artifact (`table2`, `fig2`, `fig3`, `fig5`, `fig10`, …).
//! Absolute numbers differ from the paper (CPU tensor engine vs. A100);
//! the reproduced quantity is the *shape*: who wins, by what factor, and
//! where the trade-offs fall. EXPERIMENTS.md records both sides.

pub mod experiments;
mod harness;
mod table;

pub use harness::{Harness, RunOutcome, RunSpec, StrategyKind};
pub use table::TextTable;
