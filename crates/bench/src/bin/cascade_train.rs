//! `cascade-train`: train any of the five TGNN models on a built-in
//! dataset profile or a CSV event list, with any batching strategy.
//!
//! ```text
//! cascade_train --dataset wiki --model tgn --strategy cascade --epochs 4
//! cascade_train --dataset path/to/events.csv --model jodie --save model.ckpt
//! cascade_train --dataset wiki --export-dataset wiki.evt     # write a store file
//! cascade_train --dataset wiki.evt --pipelined               # train out-of-core
//! ```

use std::path::{Path, PathBuf};

use cascade_baselines::{tgl, tglite, Etc, NeutronStream};
use cascade_core::{
    evaluate_range, train, train_streaming, BatchingStrategy, CascadeConfig, CascadeScheduler,
    TrainConfig, TrainReport,
};
use cascade_exec::{train_pipelined, train_streamed, PipelineConfig};
use cascade_models::{load_parameters, save_parameters, MemoryTgnn, ModelConfig};
use cascade_store::{export_dataset, StreamingEventSource};
use cascade_tgraph::{Dataset, EventSource, SynthConfig};

struct Args {
    dataset: String,
    model: String,
    strategy: String,
    epochs: usize,
    batch: usize,
    dim: usize,
    scale: f64,
    seed: u64,
    theta: f32,
    chunk: Option<usize>,
    export_dataset: Option<PathBuf>,
    save: Option<PathBuf>,
    load: Option<PathBuf>,
    test: bool,
    pipelined: bool,
    pipeline_depth: usize,
    staleness: usize,
    compute_threads: usize,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            dataset: "wiki".into(),
            model: "tgn".into(),
            strategy: "cascade".into(),
            epochs: 4,
            batch: 64,
            dim: 16,
            scale: 0.025,
            seed: 42,
            theta: 0.9,
            chunk: None,
            export_dataset: None,
            save: None,
            load: None,
            test: false,
            pipelined: false,
            pipeline_depth: 2,
            staleness: 1,
            compute_threads: 1,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("missing value for {}", name))
            };
            match flag.as_str() {
                "--dataset" => a.dataset = val("--dataset")?,
                "--model" => a.model = val("--model")?,
                "--strategy" => a.strategy = val("--strategy")?,
                "--epochs" => a.epochs = parse(&val("--epochs")?)?,
                "--batch" => a.batch = parse(&val("--batch")?)?,
                "--dim" => a.dim = parse(&val("--dim")?)?,
                "--scale" => a.scale = parse(&val("--scale")?)?,
                "--seed" => a.seed = parse(&val("--seed")?)?,
                "--theta" => a.theta = parse(&val("--theta")?)?,
                "--chunk" => a.chunk = Some(parse(&val("--chunk")?)?),
                "--export-dataset" => {
                    a.export_dataset = Some(PathBuf::from(val("--export-dataset")?));
                }
                "--save" => a.save = Some(PathBuf::from(val("--save")?)),
                "--load" => a.load = Some(PathBuf::from(val("--load")?)),
                "--test" => a.test = true,
                "--pipelined" => a.pipelined = true,
                "--pipeline-depth" => a.pipeline_depth = parse(&val("--pipeline-depth")?)?,
                "--staleness" => a.staleness = parse(&val("--staleness")?)?,
                "--compute-threads" => a.compute_threads = parse(&val("--compute-threads")?)?,
                "--help" | "-h" => {
                    print_usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {}", other)),
            }
        }
        Ok(a)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{}'", s))
}

fn print_usage() {
    eprintln!(
        "cascade-train: train a TGNN with adaptive or fixed batching\n\n\
         --dataset  wiki|reddit|mooc|wiki-talk|sx-full|gdelt|mag|<csv path>\n\
         \u{20}          or a .evt store file written by --export-dataset:\n\
         \u{20}          training then streams chunks out-of-core instead of\n\
         \u{20}          materializing the event list in memory\n\
         --export-dataset P   write the loaded dataset to a chunked store\n\
         \u{20}                    file at P (chunk size --chunk, default 4096)\n\
         \u{20}                    and exit without training\n\
         --model    jodie|tgn|apan|dysat|tgat            (default tgn)\n\
         --strategy tgl|tglite|cascade|cascade-tb|neutron|etc (default cascade)\n\
         --epochs N --batch N --dim N --scale F --seed N --theta F\n\
         --chunk N  enable chunked preprocessing (Cascade_EX)\n\
         --save P / --load P  checkpoint parameters\n\
         --test     also evaluate on the held-out test range\n\
         --pipelined          train with the three-stage pipelined executor\n\
         --pipeline-depth N   scan prefetch depth (default 2)\n\
         --staleness N        scheduler staleness bound in batches\n\
                              (default 1; 0 = bit-identical to serial)\n\
         --compute-threads N  shard-parallel batch compute workers\n\
                              (default 1; any N is bit-identical)"
    );
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let name = args.dataset.to_lowercase();
    let profile = match name.as_str() {
        "wiki" => Some(SynthConfig::wiki()),
        "reddit" => Some(SynthConfig::reddit()),
        "mooc" => Some(SynthConfig::mooc()),
        "wiki-talk" => Some(SynthConfig::wiki_talk()),
        "sx-full" => Some(SynthConfig::sx_full()),
        "gdelt" => Some(SynthConfig::gdelt()),
        "mag" => Some(SynthConfig::mag()),
        _ => None,
    };
    match profile {
        Some(p) => Ok(p
            .with_scale(args.scale)
            .with_node_scale(args.scale.powf(0.75))
            .with_feature_dim(8)
            .generate(args.seed)),
        None => Dataset::from_csv("csv", Path::new(&args.dataset), 8, args.seed)
            .map_err(|e| format!("cannot load {}: {}", args.dataset, e)),
    }
}

/// Is `path` an existing file with the event-store magic? Sniffing the
/// magic (rather than the extension) keeps CSV paths working unchanged.
fn is_store_file(path: &str) -> bool {
    let mut magic = [0u8; 4];
    std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut magic))
        .is_ok()
        && magic == cascade_store::MAGIC
}

fn build_model(args: &Args, num_nodes: usize, feature_dim: usize) -> Result<MemoryTgnn, String> {
    let base = match args.model.to_lowercase().as_str() {
        "jodie" => ModelConfig::jodie(),
        "tgn" => ModelConfig::tgn(),
        "apan" => ModelConfig::apan(),
        "dysat" => ModelConfig::dysat(),
        "tgat" => ModelConfig::tgat(),
        other => return Err(format!("unknown model {}", other)),
    };
    let mut cfg = base.with_dims(args.dim, (args.dim / 2).max(2));
    if cfg.sampling.count() > 4 {
        cfg = cfg.with_neighbors(4);
    }
    if args.strategy.to_lowercase() == "tglite" {
        cfg = cfg.with_lite();
    }
    Ok(MemoryTgnn::new(cfg, num_nodes, feature_dim, args.seed))
}

fn build_strategy(args: &Args) -> Result<Box<dyn BatchingStrategy + Send>, String> {
    let cascade = CascadeConfig {
        preset_batch_size: args.batch,
        theta: args.theta,
        seed: args.seed,
        chunk_size: args.chunk,
        ..CascadeConfig::default()
    };
    Ok(match args.strategy.to_lowercase().as_str() {
        "tgl" => Box::new(tgl(args.batch)),
        "tglite" => Box::new(tglite(args.batch)),
        "cascade" => Box::new(CascadeScheduler::new(cascade)),
        "cascade-tb" => Box::new(CascadeScheduler::new(cascade.without_sg_filter())),
        "neutron" => Box::new(NeutronStream::new(args.batch)),
        "etc" => Box::new(Etc::new(args.batch)),
        other => return Err(format!("unknown strategy {}", other)),
    })
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {}", e);
        print_usage();
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;

    if let Some(out) = &args.export_dataset {
        if is_store_file(&args.dataset) {
            return Err(format!(
                "{} is already a store file; --export-dataset expects a profile or CSV source",
                args.dataset
            ));
        }
        let data = load_dataset(&args)?;
        let chunk = args.chunk.unwrap_or(4096);
        let summary = export_dataset(&data, Path::new(out), chunk).map_err(|e| e.to_string())?;
        println!(
            "exported {}: {} events in {} chunks of {} (dim {}, {} nodes) -> {}",
            data.name(),
            summary.events,
            summary.chunks,
            summary.chunk_size,
            summary.feature_dim,
            summary.num_nodes,
            out.display()
        );
        return Ok(());
    }

    if is_store_file(&args.dataset) {
        return run_streaming_cli(&args);
    }

    let data = load_dataset(&args)?;
    println!(
        "dataset {}: {} nodes, {} events (train {}, val {}, test {})",
        data.name(),
        data.num_nodes(),
        data.num_events(),
        data.train_range().len(),
        data.val_range().len(),
        data.test_range().len()
    );

    let mut model = build_model(&args, data.num_nodes(), data.features().dim())?;
    if let Some(path) = &args.load {
        load_parameters(&mut model, path).map_err(|e| e.to_string())?;
        println!("loaded parameters from {}", path.display());
    }

    let mut strategy = build_strategy(&args)?;
    let cfg = TrainConfig {
        epochs: args.epochs,
        lr: 1e-3,
        eval_batch_size: args.batch,
        clip_norm: Some(5.0),
        scale_lr_with_batch: true,
        compute_threads: args.compute_threads.max(1),
        ..TrainConfig::default()
    };

    let report = if args.pipelined {
        let pcfg = PipelineConfig::default()
            .with_depth(args.pipeline_depth)
            .with_staleness(args.staleness);
        println!(
            "pipelined executor: depth {}, staleness bound {}",
            pcfg.depth,
            pcfg.effective_staleness()
        );
        train_pipelined(&mut model, &data, strategy.as_mut(), &cfg, &pcfg)
            .map_err(|e| e.to_string())?
    } else {
        train(&mut model, &data, strategy.as_mut(), &cfg)
    };
    print_report(&report);

    if args.test {
        let test = evaluate_range(&mut model, &data, data.test_range(), args.batch);
        println!(
            "  test              loss {:.4}, AP {:.4}, acc {:.4}",
            test.loss, test.average_precision, test.accuracy
        );
    }

    if let Some(path) = &args.save {
        save_parameters(&model, path).map_err(|e| e.to_string())?;
        println!("saved parameters to {}", path.display());
    }
    Ok(())
}

/// Out-of-core training straight from a store file: only the current
/// chunk window is resident; the dataset never materializes in memory.
fn run_streaming_cli(args: &Args) -> Result<(), String> {
    let mut source = StreamingEventSource::open(Path::new(&args.dataset), 2)
        .map_err(|e| format!("cannot open store {}: {}", args.dataset, e))?;
    println!(
        "store {}: {} nodes, {} events in chunks of {} (dim {}) — streaming out-of-core",
        source.name(),
        source.num_nodes(),
        source.num_events(),
        source.chunk_size(),
        source.feature_dim()
    );

    let mut model = build_model(args, source.num_nodes(), source.feature_dim())?;
    if let Some(path) = &args.load {
        load_parameters(&mut model, path).map_err(|e| e.to_string())?;
        println!("loaded parameters from {}", path.display());
    }

    let mut strategy = build_strategy(args)?;
    let cfg = TrainConfig {
        epochs: args.epochs,
        lr: 1e-3,
        eval_batch_size: args.batch,
        clip_norm: Some(5.0),
        scale_lr_with_batch: true,
        compute_threads: args.compute_threads.max(1),
        ..TrainConfig::default()
    };

    let report = if args.pipelined {
        let pcfg = PipelineConfig::default()
            .with_depth(args.pipeline_depth)
            .with_staleness(args.staleness);
        println!("pipelined loader: chunk read-ahead {}", pcfg.depth.max(1));
        train_streamed(&mut model, &mut source, strategy.as_mut(), &cfg, &pcfg)
            .map_err(|e| e.to_string())?
    } else {
        train_streaming(&mut model, &mut source, strategy.as_mut(), &cfg)
            .map_err(|e| e.to_string())?
    };
    print_report(&report);
    println!(
        "  resident window   {} bytes (vs {} bytes of stream events on disk)",
        report.space.graph,
        report
            .space
            .graph
            .max(source.num_events() * std::mem::size_of::<cascade_tgraph::Event>())
    );

    if args.test {
        eprintln!("note: --test needs the in-memory test split; skipped for store files");
    }
    if let Some(path) = &args.save {
        save_parameters(&model, path).map_err(|e| e.to_string())?;
        println!("saved parameters to {}", path.display());
    }
    Ok(())
}

fn print_report(report: &TrainReport) {
    println!(
        "\n[{} / {} / {}]",
        report.dataset, report.model, report.strategy
    );
    println!("  epochs            {}", report.epochs);
    println!("  batches           {}", report.num_batches);
    println!(
        "  batch size        avg {:.0}, max {}",
        report.avg_batch_size, report.max_batch_size
    );
    println!("  wall time         {:?}", report.total_time);
    println!("  stages            {}", report.stages);
    println!(
        "  epoch losses      {:?}",
        report
            .epoch_losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  validation        loss {:.4}, AP {:.4}, acc {:.4}",
        report.val_loss, report.val_ap, report.val_accuracy
    );
}
