//! Tolerance-gated performance check for CI.
//!
//! Reads a committed baseline file (`perf_baseline.json` at the repo
//! root, next to `lint_baseline.json`) listing bench entry ids, the
//! report file each lives in, and the median that was measured when the
//! baseline was recorded. Then re-reads the freshly generated
//! `bench_results/*.json` reports and fails (exit 1) if any gated
//! median regressed beyond the allowed tolerance.
//!
//! The default tolerance is 15% (`1.15x` the baseline median), per
//! entry-overridable in the baseline file and globally overridable with
//! `--tolerance` — CI smoke runs use tiny iteration budgets on shared
//! runners, so a generous margin keeps the gate about real regressions
//! (like the serial-path substrate tax this gate was introduced to
//! catch), not scheduler noise.
//!
//! Usage:
//!   perf_gate --baseline perf_baseline.json [--tolerance 0.15]
//!
//! Regenerate the baseline after an intentional perf change with
//! `--write-baseline` (run `cargo bench` first so the reports are
//! fresh), and review the diff like any other checked-in artifact.

use std::process::ExitCode;

use cascade_util::Json;

struct Entry {
    file: String,
    id: String,
    median_ns: f64,
    tolerance: Option<f64>,
}

fn median_from_report(path: &str, id: &str) -> Result<f64, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    let report = Json::parse(&raw).map_err(|e| format!("{} is not valid JSON: {:?}", path, e))?;
    let results = report
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{} has no results array", path))?;
    for entry in results {
        if entry.get("id").and_then(Json::as_str) == Some(id) {
            return entry
                .get("median_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{}: entry {} has no median_ns", path, id));
        }
    }
    Err(format!("{} has no entry with id {:?}", path, id))
}

fn parse_baseline(raw: &str) -> Result<(f64, Vec<Entry>), String> {
    let json = Json::parse(raw).map_err(|e| format!("baseline is not valid JSON: {:?}", e))?;
    let tolerance = json.get("tolerance").and_then(Json::as_f64).unwrap_or(0.15);
    let mut entries = Vec::new();
    for e in json
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no entries array")?
    {
        entries.push(Entry {
            file: e
                .get("file")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing file")?
                .to_string(),
            id: e
                .get("id")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing id")?
                .to_string(),
            median_ns: e
                .get("median_ns")
                .and_then(Json::as_f64)
                .ok_or("baseline entry missing median_ns")?,
            tolerance: e.get("tolerance").and_then(Json::as_f64),
        });
    }
    Ok((tolerance, entries))
}

fn write_baseline(path: &str, tolerance: f64, entries: &[Entry]) -> Result<(), String> {
    let mut rows = Vec::new();
    for e in entries {
        let fresh = median_from_report(&e.file, &e.id)?;
        let mut obj = vec![
            ("file".to_string(), Json::from(e.file.as_str())),
            ("id".to_string(), Json::from(e.id.as_str())),
            ("median_ns".to_string(), Json::from(fresh)),
        ];
        if let Some(t) = e.tolerance {
            obj.push(("tolerance".to_string(), Json::from(t)));
        }
        rows.push(Json::Obj(obj));
    }
    let report = Json::Obj(vec![
        ("tolerance".to_string(), Json::from(tolerance)),
        ("entries".to_string(), Json::Arr(rows)),
    ]);
    std::fs::write(path, report.to_string()).map_err(|e| format!("cannot write {}: {}", path, e))
}

fn run() -> Result<bool, String> {
    let mut baseline_path = "perf_baseline.json".to_string();
    let mut tolerance_override: Option<f64> = None;
    let mut write = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline_path = args.next().ok_or("--baseline needs a path")?;
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance_override = Some(v.parse().map_err(|_| format!("bad tolerance {:?}", v))?);
            }
            "--write-baseline" => write = true,
            other => return Err(format!("unknown argument {:?}", other)),
        }
    }

    let raw = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read {}: {}", baseline_path, e))?;
    let (default_tol, entries) = parse_baseline(&raw)?;
    let default_tol = tolerance_override.unwrap_or(default_tol);

    if write {
        write_baseline(&baseline_path, default_tol, &entries)?;
        eprintln!(
            "[perf_gate] rewrote {} from fresh bench reports",
            baseline_path
        );
        return Ok(true);
    }

    let mut ok = true;
    for e in &entries {
        let fresh = median_from_report(&e.file, &e.id)?;
        let tol = tolerance_override.unwrap_or(e.tolerance.unwrap_or(default_tol));
        let limit = e.median_ns * (1.0 + tol);
        let ratio = fresh / e.median_ns;
        if fresh > limit {
            ok = false;
            eprintln!(
                "[perf_gate] FAIL {}: median {:.0} ns is {:.2}x baseline {:.0} ns \
                 (allowed {:.2}x)",
                e.id,
                fresh,
                ratio,
                e.median_ns,
                1.0 + tol
            );
        } else {
            eprintln!(
                "[perf_gate] ok   {}: median {:.0} ns is {:.2}x baseline {:.0} ns \
                 (allowed {:.2}x)",
                e.id,
                fresh,
                ratio,
                e.median_ns,
                1.0 + tol
            );
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("[perf_gate] performance regression detected; see failures above");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("[perf_gate] error: {}", msg);
            ExitCode::FAILURE
        }
    }
}
