//! Regenerates the Cascade paper's tables and figures.
//!
//! ```text
//! repro all            # every artifact, writing bench_results/<id>.txt
//! repro fig10 fig11    # a subset
//! repro --list         # show ids
//! ```

use std::io::Write;
use std::path::PathBuf;

use cascade_bench::experiments::{self, Session};
use cascade_bench::Harness;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] <experiment-id>... | all");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        println!("{}", experiments::ALL.join("\n"));
        return;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let harness = Harness::from_env();
    eprintln!(
        "[repro] harness: events={} (large {}), dim={}, preset={}, epochs={}",
        harness.moderate_events,
        harness.large_events,
        harness.memory_dim,
        harness.preset_batch,
        harness.epochs
    );
    let session = Session::new(harness);

    let out_dir = PathBuf::from("bench_results");
    let _ = std::fs::create_dir_all(&out_dir);

    let mut failed = false;
    for id in ids {
        let t0 = std::time::Instant::now();
        match experiments::run(&session, id) {
            Ok(text) => {
                println!("================ {} ================", id);
                println!("{}", text);
                eprintln!(
                    "[repro] {} finished in {:.1}s",
                    id,
                    t0.elapsed().as_secs_f64()
                );
                if let Ok(mut f) = std::fs::File::create(out_dir.join(format!("{}.txt", id))) {
                    let _ = f.write_all(text.as_bytes());
                }
            }
            Err(e) => {
                eprintln!("[repro] error: {}", e);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
