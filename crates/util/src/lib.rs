#![warn(missing_docs)]
//! # cascade-util
//!
//! Std-only support utilities shared by every crate in the Cascade
//! workspace. The workspace builds with **zero external dependencies**
//! (no crates.io access, one toolchain, deterministic seeds end to end),
//! so the handful of library features the framework needs are vendored
//! here in minimal, purpose-built form:
//!
//! * [`DetRng`] — a tiny cloneable deterministic RNG (splitmix64 +
//!   xorshift*), the single source of randomness in the workspace.
//! * [`Json`] — a minimal JSON value with a compact writer and a strict
//!   parser, replacing `serde` for event-stream and bench-result I/O.
//! * [`check`] / [`Gen`] — a seeded property-testing mini-harness
//!   replacing `proptest`: case counts from `CASCADE_PROP_CASES`
//!   (default 64), failing-seed reporting, single-seed replay via
//!   `CASCADE_PROP_REPLAY`.
//! * [`BenchSuite`] — a micro-bench harness replacing `criterion`:
//!   warmup + timed iterations, median/p10/p90 statistics, JSON reports
//!   under `bench_results/`.
//!
//! # Examples
//!
//! ```
//! use cascade_util::{check, DetRng, Json};
//!
//! // Deterministic RNG.
//! let mut a = DetRng::new(42);
//! let mut b = DetRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! // JSON round-trip.
//! let v = Json::parse("{\"x\": [1, 2.5, true]}").unwrap();
//! assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
//!
//! // Property check (64 seeded cases by default).
//! check("addition_commutes", |g| {
//!     let (a, b) = (g.i64_in(-100..100), g.i64_in(-100..100));
//!     cascade_util::prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```

mod bench;
mod json;
mod prop;
mod rng;

pub use bench::{BenchStats, BenchSuite};
pub use json::{Json, JsonError};
pub use prop::{check, Gen};
pub use rng::DetRng;
