//! A minimal JSON value with a compact writer and a strict parser.
//!
//! Replaces `serde` for the workspace's two serialization needs: event
//! streams (`cascade-tgraph`) and bench-result reports (`cascade-bench`).
//! Numbers are stored as `f64`; integers up to 2^53 round-trip exactly,
//! which covers every id and nanosecond count the workspace writes.

use std::fmt;

/// A JSON value.
///
/// # Examples
///
/// ```
/// use cascade_util::Json;
///
/// let v = Json::parse("{\"name\": \"wiki\", \"events\": [1, 2, 3]}").unwrap();
/// assert_eq!(v.get("name").and_then(Json::as_str), Some("wiki"));
/// assert_eq!(v.get("events").and_then(Json::as_arr).map(|a| a.len()), Some(3));
/// let rendered = v.to_string();
/// assert_eq!(Json::parse(&rendered).unwrap(), v);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any number, stored as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`]: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Member of an object by key; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= usize::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is a [`Json::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // JSON has no NaN/Infinity; degrade to null like
                // JavaScript's JSON.stringify.
                if v.is_finite() {
                    write!(f, "{}", v)
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}", item)?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{}", v)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{}", c)?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{}'", word)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{}'", text)))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired;
                            // nothing in the workspace emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : [] } ] , \"c\" : null } ").unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0], Json::Num(1.0));
        assert_eq!(a[1].get("b").unwrap(), &Json::Arr(vec![]));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\n\"quoted\"\tback\\slash \u{1}end".into());
        let rendered = original.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.pos, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, -1.0, 1e-9, 123456789.25, 9.007199254740991e15] {
            let rendered = Json::Num(v).to_string();
            assert_eq!(
                Json::parse(&rendered).unwrap(),
                Json::Num(v),
                "{}",
                rendered
            );
        }
    }

    #[test]
    fn non_finite_degrades_to_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn as_usize_guards() {
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("3".into()).as_usize(), None);
    }

    #[test]
    fn object_preserves_order() {
        let v = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
    }
}
