//! A seeded property-testing mini-harness replacing `proptest`.
//!
//! A property is a closure over a [`Gen`] that draws random inputs and
//! returns `Err(message)` (usually via [`prop_assert!`] /
//! [`prop_assert_eq!`]) when the property is violated. [`check`] runs the
//! closure for `CASCADE_PROP_CASES` deterministically seeded cases
//! (default 64) and, on failure, reports the exact case seed so the
//! counterexample can be replayed in isolation:
//!
//! ```text
//! CASCADE_PROP_REPLAY=<seed> cargo test <test-name>
//! ```
//!
//! Environment knobs:
//!
//! * `CASCADE_PROP_CASES` — cases per property (default 64).
//! * `CASCADE_PROP_SEED` — base seed mixed into every case (default 0).
//! * `CASCADE_PROP_REPLAY` — run exactly one case with this seed.
//!
//! [`prop_assert!`]: crate::prop_assert
//! [`prop_assert_eq!`]: crate::prop_assert_eq

use std::ops::Range;

use crate::rng::DetRng;

/// The random-input source handed to a property closure.
///
/// Thin convenience wrapper around [`DetRng`] with range-draw helpers;
/// [`Gen::rng`] exposes the raw generator for anything else.
pub struct Gen {
    rng: DetRng,
}

impl Gen {
    /// A generator seeded for one property case.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: DetRng::new(seed),
        }
    }

    /// The underlying deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// An arbitrary 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `usize` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(!range.is_empty(), "usize_in on empty range");
        range.start + self.rng.index(range.end - range.start)
    }

    /// Uniform `i64` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        assert!(!range.is_empty(), "i64_in on empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range
            .start
            .wrapping_add((self.rng.next_u64() % span) as i64)
    }

    /// Uniform `f32` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn f32_in(&mut self, range: Range<f32>) -> f32 {
        self.rng.range_f32(range.start, range.end)
    }

    /// Uniform `f64` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "f64_in on empty range");
        range.start + self.rng.f64() * (range.end - range.start)
    }

    /// A vector of `len` uniform `f32` values in `range`.
    pub fn vec_f32(&mut self, len: usize, range: Range<f32>) -> Vec<f32> {
        (0..len).map(|_| self.f32_in(range.clone())).collect()
    }

    /// A vector of `len` uniform `usize` values in `range`.
    pub fn vec_usize(&mut self, len: usize, range: Range<usize>) -> Vec<usize> {
        (0..len).map(|_| self.usize_in(range.clone())).collect()
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a over the property name, so distinct properties draw distinct
/// case seeds even under the same base seed.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_seed(base: u64, name: &str, case: usize) -> u64 {
    fnv1a(name) ^ base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `property` for `CASCADE_PROP_CASES` seeded cases (default 64),
/// panicking with the failing case's seed on the first violation.
///
/// # Panics
///
/// Panics when the property returns `Err`, including the case seed and a
/// ready-to-paste `CASCADE_PROP_REPLAY` command line.
///
/// # Examples
///
/// ```
/// use cascade_util::{check, prop_assert};
///
/// check("reverse_is_involutive", |g| {
///     let len = g.usize_in(0..16);
///     let v = g.vec_usize(len, 0..100);
///     let mut w = v.clone();
///     w.reverse();
///     w.reverse();
///     prop_assert!(w == v, "double reverse changed {:?}", v);
///     Ok(())
/// });
/// ```
pub fn check<F>(name: &str, mut property: F)
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    if let Ok(replay) = std::env::var("CASCADE_PROP_REPLAY") {
        let seed: u64 = replay
            .parse()
            .expect("CASCADE_PROP_REPLAY must be a u64 case seed");
        let mut g = Gen::new(seed);
        if let Err(msg) = property(&mut g) {
            panic!(
                "property '{}' failed on replayed seed {}: {}",
                name, seed, msg
            );
        }
        return;
    }

    let cases = env_u64("CASCADE_PROP_CASES", 64).max(1);
    let base = env_u64("CASCADE_PROP_SEED", 0);
    for case in 0..cases as usize {
        let seed = case_seed(base, name, case);
        let mut g = Gen::new(seed);
        if let Err(msg) = property(&mut g) {
            panic!(
                "property '{}' failed at case {}/{}: {}\n\
                 replay with: CASCADE_PROP_REPLAY={} cargo test",
                name, case, cases, msg, seed
            );
        }
    }
}

/// Early-returns `Err` from a property closure when a condition fails.
///
/// With a single argument the message is the stringified condition; extra
/// arguments are a `format!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Early-returns `Err` from a property closure when two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0usize;
        check("counting", |_| {
            ran += 1;
            Ok(())
        });
        assert_eq!(ran, 64);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check("det", |g| {
            first.push(g.u64());
            Ok(())
        });
        let mut second = Vec::new();
        check("det", |g| {
            second.push(g.u64());
            Ok(())
        });
        assert_eq!(first, second);
        // Distinct property names see distinct streams.
        let mut other = Vec::new();
        check("det2", |g| {
            other.push(g.u64());
            Ok(())
        });
        assert_ne!(first, other);
    }

    #[test]
    #[should_panic(expected = "replay with")]
    fn failure_reports_seed() {
        check("always_fails", |_| Err("nope".into()));
    }

    #[test]
    fn draws_respect_ranges() {
        check("ranges", |g| {
            let u = g.usize_in(3..9);
            prop_assert!((3..9).contains(&u), "usize {} out of range", u);
            let i = g.i64_in(-5..5);
            prop_assert!((-5..5).contains(&i), "i64 {} out of range", i);
            let x = g.f32_in(-2.0..2.0);
            prop_assert!((-2.0..2.0).contains(&x), "f32 {} out of range", x);
            let v = g.vec_f32(7, 0.0..1.0);
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
            Ok(())
        });
    }

    #[test]
    fn prop_assert_eq_formats_both_sides() {
        let result: Result<(), String> = (|| {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        })();
        let msg = result.unwrap_err();
        assert!(msg.contains("left: 2"), "{}", msg);
        assert!(msg.contains("right: 3"), "{}", msg);
    }
}
