//! A micro-bench harness replacing `criterion`.
//!
//! Bench targets are plain `harness = false` binaries that build a
//! [`BenchSuite`], register closures with [`BenchSuite::bench`], and call
//! [`BenchSuite::finish`]. Mirroring criterion's behaviour:
//!
//! * under `cargo bench` (cargo passes `--bench`) every closure runs
//!   `CASCADE_BENCH_WARMUP` warmup iterations (default 3) plus
//!   `CASCADE_BENCH_ITERS` timed iterations (default 30), and the suite
//!   writes a JSON report into `bench_results/<suite>.json`;
//! * under `cargo test` (no `--bench` argument) every closure runs once
//!   as a smoke test and nothing is written.
//!
//! The report lists per-bench mean/median/p10/p90/min/max in nanoseconds.

use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::json::Json;

/// Timing statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchStats {
    /// Benchmark id (unique within a suite).
    pub id: String,
    /// Timed iterations behind the statistics.
    pub iters: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (50th percentile).
    pub median_ns: f64,
    /// 10th percentile.
    pub p10_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl BenchStats {
    /// Computes statistics from raw per-iteration samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(id: &str, samples: &[f64]) -> BenchStats {
        assert!(!samples.is_empty(), "no samples for '{}'", id);
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        BenchStats {
            id: id.to_string(),
            iters: sorted.len(),
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median_ns: quantile(&sorted, 0.5),
            p10_ns: quantile(&sorted, 0.1),
            p90_ns: quantile(&sorted, 0.9),
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        }
    }

    /// This record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::from(self.id.as_str())),
            ("iters".into(), Json::from(self.iters)),
            ("mean_ns".into(), Json::from(self.mean_ns)),
            ("median_ns".into(), Json::from(self.median_ns)),
            ("p10_ns".into(), Json::from(self.p10_ns)),
            ("p90_ns".into(), Json::from(self.p90_ns)),
            ("min_ns".into(), Json::from(self.min_ns)),
            ("max_ns".into(), Json::from(self.max_ns)),
        ])
    }

    /// Parses a record written by [`BenchStats::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<BenchStats, String> {
        let field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field '{}'", k))
        };
        Ok(BenchStats {
            id: v
                .get("id")
                .and_then(Json::as_str)
                .ok_or("missing or non-string field 'id'")?
                .to_string(),
            iters: v
                .get("iters")
                .and_then(Json::as_usize)
                .ok_or("missing or non-integer field 'iters'")?,
            mean_ns: field("mean_ns")?,
            median_ns: field("median_ns")?,
            p10_ns: field("p10_ns")?,
            p90_ns: field("p90_ns")?,
            min_ns: field("min_ns")?,
            max_ns: field("max_ns")?,
        })
    }
}

/// Linear-interpolated quantile of an ascending-sorted sample set.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A named collection of benchmarks, run and reported together.
///
/// # Examples
///
/// ```
/// use cascade_util::BenchSuite;
///
/// let mut suite = BenchSuite::with_config("doc", 5, 1, false);
/// suite.bench("sum_1k", || (0..1000u64).sum::<u64>());
/// let stats = suite.stats();
/// assert_eq!(stats[0].id, "sum_1k");
/// assert!(stats[0].median_ns >= 0.0);
/// ```
pub struct BenchSuite {
    name: String,
    iters: usize,
    warmup: usize,
    /// Smoke mode: run each closure once, skip timing and reporting.
    smoke: bool,
    /// Workload seed recorded in the report (0 = unseeded workload).
    seed: u64,
    results: Vec<BenchStats>,
}

impl BenchSuite {
    /// Creates a suite configured from the environment and command line,
    /// the constructor bench binaries use.
    ///
    /// Full measurement mode requires `--bench` among the process
    /// arguments (which `cargo bench` passes) or `CASCADE_BENCH_FORCE=1`;
    /// otherwise the suite runs in smoke mode, matching criterion's
    /// `cargo test` behaviour.
    pub fn new(name: &str) -> BenchSuite {
        let full = std::env::args().any(|a| a == "--bench")
            || std::env::var("CASCADE_BENCH_FORCE").is_ok_and(|v| v == "1");
        let env = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        BenchSuite::with_config(
            name,
            env("CASCADE_BENCH_ITERS", 30).max(1),
            env("CASCADE_BENCH_WARMUP", 3),
            !full,
        )
    }

    /// Creates a suite with explicit iteration counts (tests, docs).
    pub fn with_config(name: &str, iters: usize, warmup: usize, smoke: bool) -> BenchSuite {
        BenchSuite {
            name: name.to_string(),
            iters: iters.max(1),
            warmup,
            smoke,
            seed: 0,
            results: Vec::new(),
        }
    }

    /// Records the workload seed the suite's closures were built from, so
    /// every report carries its reproduction key (`seed` stays 0 for
    /// unseeded workloads).
    pub fn with_seed(mut self, seed: u64) -> BenchSuite {
        self.seed = seed;
        self
    }

    /// Runs one benchmark closure and records its statistics.
    ///
    /// In smoke mode the closure runs exactly once and nothing is
    /// recorded.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        if self.smoke {
            std::hint::black_box(f());
            eprintln!("[bench {}] {}: smoke ok", self.name, id);
            return;
        }
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        let stats = BenchStats::from_samples(id, &samples);
        eprintln!(
            "[bench {}] {}: median {} (p10 {}, p90 {}) over {} iters",
            self.name,
            stats.id,
            humanize_ns(stats.median_ns),
            humanize_ns(stats.p10_ns),
            humanize_ns(stats.p90_ns),
            stats.iters,
        );
        self.results.push(stats);
    }

    /// The statistics recorded so far.
    pub fn stats(&self) -> &[BenchStats] {
        &self.results
    }

    /// The whole suite as a JSON report.
    ///
    /// Every report carries its provenance: the workload `seed` (see
    /// [`BenchSuite::with_seed`]) and `host_parallelism`, the core count
    /// the host actually granted — numbers from a one-core container and
    /// a 32-core box are not comparable without it.
    pub fn to_json(&self) -> Json {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Json::Obj(vec![
            ("suite".into(), Json::from(self.name.as_str())),
            ("seed".into(), Json::from(self.seed as usize)),
            ("host_parallelism".into(), Json::from(cores)),
            (
                "results".into(),
                Json::Arr(self.results.iter().map(BenchStats::to_json).collect()),
            ),
        ])
    }

    /// Finishes the suite: in measurement mode, writes
    /// `bench_results/<suite>.json` and returns the path.
    ///
    /// The output directory is `CASCADE_BENCH_DIR` if set, otherwise the
    /// nearest `bench_results/` directory among the working directory and
    /// its ancestors (`cargo bench` runs bench binaries from the package
    /// directory, not the workspace root), otherwise `bench_results/` in
    /// the working directory.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written.
    pub fn finish(self) -> Option<PathBuf> {
        if self.smoke {
            return None;
        }
        let dir = output_dir();
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {}", dir.display(), e));
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json().to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));
        eprintln!("[bench {}] wrote {}", self.name, path.display());
        Some(path)
    }
}

fn output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CASCADE_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe: Option<&Path> = Some(&cwd);
    while let Some(dir) = probe {
        let candidate = dir.join("bench_results");
        if candidate.is_dir() {
            return candidate;
        }
        probe = dir.parent();
    }
    cwd.join("bench_results")
}

fn humanize_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{:.0}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_known_samples() {
        let samples: Vec<f64> = (1..=11).map(|v| v as f64).collect();
        let s = BenchStats::from_samples("x", &samples);
        assert_eq!(s.iters, 11);
        assert_eq!(s.median_ns, 6.0);
        assert_eq!(s.p10_ns, 2.0);
        assert_eq!(s.p90_ns, 10.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 11.0);
        assert!((s.mean_ns - 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_json_round_trip() {
        let s = BenchStats::from_samples("kernel/matmul_64", &[3.0, 1.0, 2.0]);
        let parsed = BenchStats::from_json(&Json::parse(&s.to_json().to_string()).unwrap());
        assert_eq!(parsed, Ok(s));
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = Json::parse("{\"id\": \"x\"}").unwrap();
        assert!(BenchStats::from_json(&v).unwrap_err().contains("iters"));
    }

    #[test]
    fn suite_measures_and_serializes() {
        let mut suite = BenchSuite::with_config("unit", 8, 1, false);
        suite.bench("spin", || {
            std::hint::black_box((0..100u64).fold(0u64, |a, b| a.wrapping_add(b)))
        });
        assert_eq!(suite.stats().len(), 1);
        let json = suite.to_json();
        assert_eq!(json.get("suite").and_then(Json::as_str), Some("unit"));
        let results = json.get("results").and_then(Json::as_arr).unwrap();
        let parsed = BenchStats::from_json(&results[0]).unwrap();
        assert_eq!(parsed.id, "spin");
        assert_eq!(parsed.iters, 8);
        assert!(parsed.min_ns <= parsed.median_ns && parsed.median_ns <= parsed.max_ns);
        assert!(parsed.p10_ns <= parsed.median_ns && parsed.median_ns <= parsed.p90_ns);
    }

    #[test]
    fn reports_carry_seed_and_host_parallelism() {
        let suite = BenchSuite::with_config("prov", 1, 0, false).with_seed(9);
        let json = suite.to_json();
        assert_eq!(json.get("seed").and_then(Json::as_usize), Some(9));
        assert!(json.get("host_parallelism").and_then(Json::as_usize) >= Some(1));
        let unseeded = BenchSuite::with_config("prov0", 1, 0, false).to_json();
        assert_eq!(unseeded.get("seed").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn smoke_mode_records_nothing() {
        let mut suite = BenchSuite::with_config("smoke", 1000, 1000, true);
        let mut calls = 0usize;
        suite.bench("once", || calls += 1);
        assert_eq!(calls, 1);
        assert!(suite.stats().is_empty());
        assert_eq!(suite.finish(), None);
    }
}
