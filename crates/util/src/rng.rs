//! A small, cloneable, deterministic RNG (splitmix64 + xorshift*).
//!
//! Sampling components must be `Clone` (batching strategies are cloned for
//! ablations) and reproducible across platforms, so a tiny local generator
//! is preferable to threading library RNG state.

/// Deterministic pseudo-random generator.
///
/// # Examples
///
/// ```
/// use cascade_util::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_f32(&mut self, low: f32, high: f32) -> f32 {
        assert!(low < high, "range_f32 requires low < high");
        low + self.f32() * (high - low)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0) is undefined");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_f32_bounded() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let v = r.range_f32(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn index_in_range() {
        let mut r = DetRng::new(4);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn index_roughly_uniform() {
        let mut r = DetRng::new(5);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.index(4)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {}", c);
        }
    }

    #[test]
    #[should_panic(expected = "index(0)")]
    fn index_zero_panics() {
        DetRng::new(0).index(0);
    }
}
