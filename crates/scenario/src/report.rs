//! Scenario reporting and the crate's designated I/O module: recipe
//! loading, `bench_results/scenario_<name>.json` writing, and the raw
//! `/proc/self/status` read the RSS sampler parses.
//!
//! Every other module in this crate is `io-fs-confined`: all `std::fs`
//! access funnels through here so error typing and path resolution live
//! in one place (mirroring `models/checkpoint.rs` and
//! `serve/persist.rs`).

use std::path::{Path, PathBuf};

use cascade_core::SpaceBreakdown;
use cascade_util::Json;

use crate::recipe::Recipe;
use crate::ScenarioError;

/// Raw `/proc/self/status` text, `None` when unavailable (non-Linux).
pub fn proc_self_status() -> Option<String> {
    std::fs::read_to_string("/proc/self/status").ok()
}

/// Loads and parses a recipe file.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the file cannot be read or fails
/// schema validation.
pub fn load_recipe(path: &Path) -> Result<Recipe, ScenarioError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::new(format!("cannot read {}: {}", path.display(), e)))?;
    Recipe::parse(&text).map_err(|e| ScenarioError::new(format!("{}: {}", path.display(), e)))
}

/// Lists `<name>.json` recipes under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the directory cannot be read.
pub fn list_recipes(dir: &Path) -> Result<Vec<PathBuf>, ScenarioError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ScenarioError::new(format!("cannot list {}: {}", dir.display(), e)))?;
    let mut out: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| ScenarioError::new(format!("cannot list {}: {}", dir.display(), e)))?
            .path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Per-phase slice of the final-epoch training loss trajectory.
#[derive(Clone, Debug)]
pub struct PhaseLoss {
    /// Phase display name.
    pub name: String,
    /// Phase kind keyword.
    pub kind: String,
    /// Base events the phase contributes to the stream.
    pub events: usize,
    /// Final-epoch training batches whose first event falls in the
    /// phase (0 for phases entirely past the train split).
    pub batches: usize,
    /// Event-weighted mean loss of those batches (NaN-free: 0 when the
    /// phase saw no training batches).
    pub mean_loss: f32,
}

/// The structured result of one scenario run, serialized to
/// `bench_results/scenario_<name>.json`.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name (report file stem; scaled runs carry an `@f`
    /// suffix from [`Recipe::scaled`]).
    pub name: String,
    /// Generation seed.
    pub seed: u64,
    /// Cores the host granted (`std::thread::available_parallelism`).
    pub host_parallelism: usize,
    /// What ran: `generate`, `train`, `train-pipelined`,
    /// `train-dist<N>`, or `serve-replay`.
    pub mode: String,
    /// Node-id space.
    pub nodes: usize,
    /// Edge-feature width.
    pub feature_dim: usize,
    /// CEVT chunk size.
    pub chunk_size: usize,
    /// Normalized (post-dedup) stream length.
    pub base_events: usize,
    /// Raw delivered stream length (with injected duplicates).
    pub delivered_events: usize,
    /// Ingest normalization policy applied (`reject`,
    /// `buffered-reorder(w)`, …).
    pub reorder_policy: String,
    /// `VmHWM` after the run, bytes (0 when `/proc` is unavailable).
    pub peak_rss_bytes: usize,
    /// Wall-clock of the measured span, seconds.
    pub wall_secs: f64,
    /// Delivered events processed per wall-second across the run.
    pub events_per_sec: f64,
    /// Epochs trained (0 in generate/serve modes).
    pub epochs: usize,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final-epoch mean training loss.
    pub final_train_loss: f32,
    /// Validation loss (NaN-free: 0 when not evaluated).
    pub val_loss: f32,
    /// Per-phase final-epoch loss trajectory.
    pub phases: Vec<PhaseLoss>,
    /// End-of-run space accounting, when the mode trains.
    pub space: Option<SpaceBreakdown>,
}

impl ScenarioReport {
    /// Serializes to the report JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("scenario".into(), Json::from(self.name.as_str())),
            ("seed".into(), Json::from(self.seed as usize)),
            ("host_parallelism".into(), Json::from(self.host_parallelism)),
            ("mode".into(), Json::from(self.mode.as_str())),
            ("nodes".into(), Json::from(self.nodes)),
            ("feature_dim".into(), Json::from(self.feature_dim)),
            ("chunk_size".into(), Json::from(self.chunk_size)),
            ("base_events".into(), Json::from(self.base_events)),
            ("delivered_events".into(), Json::from(self.delivered_events)),
            (
                "reorder_policy".into(),
                Json::from(self.reorder_policy.as_str()),
            ),
            ("peak_rss_bytes".into(), Json::from(self.peak_rss_bytes)),
            ("wall_secs".into(), Json::from(self.wall_secs)),
            ("events_per_sec".into(), Json::from(self.events_per_sec)),
            ("epochs".into(), Json::from(self.epochs)),
            (
                "epoch_losses".into(),
                Json::Arr(
                    self.epoch_losses
                        .iter()
                        .map(|l| Json::from(*l as f64))
                        .collect(),
                ),
            ),
            (
                "final_train_loss".into(),
                Json::from(self.final_train_loss as f64),
            ),
            ("val_loss".into(), Json::from(self.val_loss as f64)),
            (
                "phase_losses".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::from(p.name.as_str())),
                                ("kind".into(), Json::from(p.kind.as_str())),
                                ("events".into(), Json::from(p.events)),
                                ("batches".into(), Json::from(p.batches)),
                                ("mean_loss".into(), Json::from(p.mean_loss as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(space) = &self.space {
            fields.push((
                "space".into(),
                Json::Obj(vec![
                    (
                        "dependency_table".into(),
                        Json::from(space.dependency_table),
                    ),
                    ("stable_flags".into(), Json::from(space.stable_flags)),
                    ("graph".into(), Json::from(space.graph)),
                    ("edge_features".into(), Json::from(space.edge_features)),
                    ("model".into(), Json::from(space.model)),
                    ("mailbox".into(), Json::from(space.mailbox)),
                    ("memory".into(), Json::from(space.memory)),
                    ("plane_shards".into(), Json::from(space.plane_shards)),
                    ("total".into(), Json::from(space.total())),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Writes the report to `dir` (default: the nearest `bench_results`
    /// directory, honoring `CASCADE_BENCH_DIR` like the bench harness)
    /// as `scenario_<name>.json`, returning the path.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] on any filesystem failure.
    pub fn write(&self, dir: Option<&Path>) -> Result<PathBuf, ScenarioError> {
        let dir = match dir {
            Some(d) => d.to_path_buf(),
            None => default_report_dir(),
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| ScenarioError::new(format!("cannot create {}: {}", dir.display(), e)))?;
        // `@` in scaled names is awkward in shell globs; keep stems flat.
        let stem = self.name.replace(['@', '/'], "_");
        let path = dir.join(format!("scenario_{}.json", stem));
        std::fs::write(&path, self.to_json().to_string())
            .map_err(|e| ScenarioError::new(format!("cannot write {}: {}", path.display(), e)))?;
        Ok(path)
    }
}

/// Report directory resolution, mirroring the bench harness: the
/// `CASCADE_BENCH_DIR` override, else the nearest `bench_results`
/// ancestor directory, else `./bench_results`.
fn default_report_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CASCADE_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe: Option<&Path> = Some(&cwd);
    while let Some(dir) = probe {
        let candidate = dir.join("bench_results");
        if candidate.is_dir() {
            return candidate;
        }
        probe = dir.parent();
    }
    cwd.join("bench_results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            name: "unit".into(),
            seed: 9,
            host_parallelism: 1,
            mode: "train".into(),
            nodes: 10,
            feature_dim: 4,
            chunk_size: 64,
            base_events: 100,
            delivered_events: 110,
            reorder_policy: "buffered-reorder(16)".into(),
            peak_rss_bytes: 1024,
            wall_secs: 0.5,
            events_per_sec: 220.0,
            epochs: 1,
            epoch_losses: vec![0.7],
            final_train_loss: 0.7,
            val_loss: 0.69,
            phases: vec![PhaseLoss {
                name: "warm".into(),
                kind: "baseline".into(),
                events: 100,
                batches: 2,
                mean_loss: 0.7,
            }],
            space: None,
        }
    }

    #[test]
    fn report_json_carries_the_required_fields() {
        let json = sample_report().to_json();
        assert_eq!(json.get("seed").and_then(|v| v.as_usize()), Some(9));
        assert_eq!(
            json.get("host_parallelism").and_then(|v| v.as_usize()),
            Some(1)
        );
        assert!(json.get("peak_rss_bytes").is_some());
        assert!(json.get("events_per_sec").is_some());
        let phases = json
            .get("phase_losses")
            .and_then(|v| v.as_arr())
            .expect("phase losses serialize");
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("kind").and_then(|v| v.as_str()),
            Some("baseline")
        );
        // Round-trips through the vendored parser.
        let text = json.to_string();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn write_lands_in_the_requested_dir_and_flattens_scaled_names() {
        let dir = std::env::temp_dir().join("cascade_scenario_report_test");
        let mut report = sample_report();
        report.name = "unit@0.1".into();
        let path = report.write(Some(&dir)).expect("write succeeds");
        assert!(path.ends_with("scenario_unit_0.1.json"));
        let text = std::fs::read_to_string(&path).expect("report is readable");
        assert!(text.contains("\"scenario\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn proc_status_is_readable_on_linux() {
        if let Some(status) = proc_self_status() {
            assert!(status.contains("VmHWM") || !status.is_empty());
        }
    }
}
