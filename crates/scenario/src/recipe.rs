//! The recipe file format: a declarative description of a synthetic
//! workload — graph shape, training shape, and an ordered list of
//! mid-stream perturbation phases.
//!
//! Recipes are JSON (parsed with the vendored `cascade_util::Json`
//! reader — no external crates) and are the *only* input to generation:
//! a `(recipe, seed)` pair regenerates its event stream bit-identically
//! on any host, which is what lets dist followers re-synthesize a
//! leader's dataset and CI replay a committed scenario. See DESIGN.md
//! §13 for the schema and perturbation semantics.
//!
//! ```json
//! {
//!   "name": "adv_reorder",
//!   "seed": 42,
//!   "nodes": 3000,
//!   "feature_dim": 16,
//!   "skew": 2.0,
//!   "burstiness": 0.3,
//!   "repeat_prob": 0.5,
//!   "chunk_size": 1024,
//!   "train": { "model": "tgn", "dim": 16, "batch": 256, "epochs": 1 },
//!   "phases": [
//!     { "name": "warmup", "kind": "baseline", "events": 30000 },
//!     { "name": "storm", "kind": "reorder", "events": 30000,
//!       "window": 64, "duplicate_every": 16 }
//!   ]
//! }
//! ```

use cascade_util::Json;

use crate::ScenarioError;

/// One perturbation phase: `events` *base* events generated under
/// `kind`'s modified dynamics. Phases run in recipe order and partition
/// the stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Display name, used in per-phase loss reporting.
    pub name: String,
    /// Base (pre-duplication) events this phase contributes.
    pub events: usize,
    /// Which perturbation is applied.
    pub kind: PhaseKind,
}

/// Perturbation semantics, applied for the duration of one phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhaseKind {
    /// Recipe-level dynamics, unmodified.
    Baseline,
    /// A flash crowd: inter-arrival times compress by `compression`
    /// and sources concentrate on the `hubs` currently-hottest nodes.
    FlashCrowd {
        /// Inter-arrival divisor (10.0 = ten times the event rate).
        compression: f64,
        /// Size of the hot-hub set sources concentrate on.
        hubs: usize,
    },
    /// Node churn: the active-node window advances an extra `rotate`
    /// fraction of its span over the phase, replacing that share of the
    /// population mid-stream.
    Churn {
        /// Fraction of the active window replaced during the phase.
        rotate: f64,
    },
    /// The hub-skew exponent jumps to `skew` for the phase (hot hubs
    /// shift because the window keeps advancing).
    SkewShift {
        /// Replacement skew exponent.
        skew: f64,
    },
    /// Delivery-order perturbation: events are scrambled within
    /// consecutive blocks of `window`, and every `duplicate_every`-th
    /// event is delivered twice (0 = no duplicates). Base dynamics are
    /// untouched — the sorted stream is bit-identical to a `Baseline`
    /// phase, which is what the reorder-identity acceptance test
    /// asserts end to end.
    Reorder {
        /// Scramble block size (also the consumer's reorder window).
        window: usize,
        /// Duplicate cadence in events (0 disables duplication).
        duplicate_every: usize,
    },
}

impl PhaseKind {
    /// Schema keyword for this kind.
    pub fn keyword(&self) -> &'static str {
        match self {
            PhaseKind::Baseline => "baseline",
            PhaseKind::FlashCrowd { .. } => "flash_crowd",
            PhaseKind::Churn { .. } => "churn",
            PhaseKind::SkewShift { .. } => "skew_shift",
            PhaseKind::Reorder { .. } => "reorder",
        }
    }
}

/// Training shape: which model the runner trains on the stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainSpec {
    /// Model keyword (`jodie|tgn|apan|dysat|tgat`).
    pub model: String,
    /// Memory/embedding dimension.
    pub dim: usize,
    /// Preset batch size.
    pub batch: usize,
    /// Epochs to train.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        TrainSpec {
            model: "tgn".into(),
            dim: 16,
            batch: 256,
            epochs: 1,
            lr: 1e-3,
        }
    }
}

/// A parsed scenario recipe. See the module docs for the schema.
#[derive(Clone, Debug, PartialEq)]
pub struct Recipe {
    /// Scenario name (report file stem).
    pub name: String,
    /// Generation seed; the `(recipe, seed)` pair addresses the stream.
    pub seed: u64,
    /// Node-id space of the generated stream.
    pub nodes: usize,
    /// Edge-feature width.
    pub feature_dim: usize,
    /// Hub-skew exponent (higher = heavier concentration on hot nodes).
    pub skew: f64,
    /// Probability an inter-arrival gap is a burst gap (20x shorter).
    pub burstiness: f64,
    /// Probability a destination repeats a recent partner.
    pub repeat_prob: f64,
    /// Fraction of the node space active at any instant.
    pub pool_fraction: f64,
    /// Recent partners remembered per source slot.
    pub partner_cap: usize,
    /// CEVT chunk size (events per frame).
    pub chunk_size: usize,
    /// Training shape.
    pub train: TrainSpec,
    /// Ordered perturbation phases.
    pub phases: Vec<Phase>,
}

impl Recipe {
    /// Parses a recipe from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the offending field on any
    /// schema violation.
    pub fn parse(text: &str) -> Result<Recipe, ScenarioError> {
        let json = Json::parse(text)
            .map_err(|e| ScenarioError::new(format!("recipe is not valid JSON: {}", e)))?;
        let name = req_str(&json, "name")?.to_string();
        let seed = req_usize(&json, "seed")? as u64;
        let nodes = req_usize(&json, "nodes")?;
        if nodes == 0 {
            return Err(ScenarioError::new("recipe field 'nodes' must be positive"));
        }
        let feature_dim = opt_usize(&json, "feature_dim", 0)?;
        let skew = opt_f64(&json, "skew", 2.0)?;
        let burstiness = opt_f64(&json, "burstiness", 0.0)?;
        let repeat_prob = opt_f64(&json, "repeat_prob", 0.0)?;
        let pool_fraction = opt_f64(&json, "pool_fraction", 0.2)?;
        let partner_cap = opt_usize(&json, "partner_cap", 8)?;
        let chunk_size = opt_usize(&json, "chunk_size", 4096)?;
        if chunk_size == 0 {
            return Err(ScenarioError::new(
                "recipe field 'chunk_size' must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&burstiness) || !(0.0..=1.0).contains(&repeat_prob) {
            return Err(ScenarioError::new(
                "recipe fields 'burstiness' and 'repeat_prob' must be in [0, 1]",
            ));
        }
        if pool_fraction <= 0.0 || pool_fraction > 1.0 {
            return Err(ScenarioError::new(
                "recipe field 'pool_fraction' must be in (0, 1]",
            ));
        }

        let train = match json.get("train") {
            Some(t) => TrainSpec {
                model: opt_str(t, "model", "tgn")?.to_string(),
                dim: opt_usize(t, "dim", 16)?,
                batch: opt_usize(t, "batch", 256)?,
                epochs: opt_usize(t, "epochs", 1)?,
                lr: opt_f64(t, "lr", 1e-3)?,
            },
            None => TrainSpec::default(),
        };
        if train.batch == 0 || train.dim == 0 || train.epochs == 0 {
            return Err(ScenarioError::new(
                "train fields 'batch', 'dim', and 'epochs' must be positive",
            ));
        }

        let phases_json = json
            .get("phases")
            .and_then(|p| p.as_arr())
            .ok_or_else(|| ScenarioError::new("recipe needs a non-empty 'phases' array"))?;
        if phases_json.is_empty() {
            return Err(ScenarioError::new(
                "recipe needs a non-empty 'phases' array",
            ));
        }
        let mut phases = Vec::with_capacity(phases_json.len());
        for (i, p) in phases_json.iter().enumerate() {
            phases.push(parse_phase(p, i)?);
        }

        Ok(Recipe {
            name,
            seed,
            nodes,
            feature_dim,
            skew,
            burstiness,
            repeat_prob,
            pool_fraction,
            partner_cap,
            chunk_size,
            train,
            phases,
        })
    }

    /// Total *base* events across all phases (the normalized stream
    /// length: duplicates injected by reorder phases are on top of
    /// this, and are dropped again by ingest normalization).
    pub fn base_events(&self) -> usize {
        self.phases.iter().map(|p| p.events).sum()
    }

    /// Total events as *delivered*, including injected duplicates —
    /// the raw stream length a generated CEVT file holds.
    pub fn delivered_events(&self) -> usize {
        self.base_events()
            + self
                .phases
                .iter()
                .map(|p| match p.kind {
                    PhaseKind::Reorder {
                        duplicate_every, ..
                    } if duplicate_every > 0 => p.events / duplicate_every,
                    _ => 0,
                })
                .sum::<usize>()
    }

    /// The widest reorder window any phase uses (0 when no phase
    /// perturbs delivery order): the [`ReorderPolicy`] window a
    /// consumer needs to normalize this recipe's stream.
    ///
    /// [`ReorderPolicy`]: cascade_tgraph::ReorderPolicy
    pub fn max_reorder_window(&self) -> usize {
        self.phases
            .iter()
            .map(|p| match p.kind {
                PhaseKind::Reorder { window, .. } => window,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// A copy with every phase's event budget scaled by `factor`
    /// (minimum 16 events per phase), for running a recipe's exact
    /// dynamics at test size. The name gains a `@f` suffix so reports
    /// of scaled runs are never mistaken for the committed scenario.
    pub fn scaled(&self, factor: f64) -> Recipe {
        let mut out = self.clone();
        if (factor - 1.0).abs() < f64::EPSILON {
            return out;
        }
        for p in &mut out.phases {
            p.events = ((p.events as f64 * factor) as usize).max(16);
        }
        out.name = format!("{}@{}", self.name, factor);
        out
    }

    /// A copy with reorder phases' delivery perturbation disabled
    /// (kind → `Baseline`): the pre-sorted control stream. Base
    /// dynamics are untouched, so the control's events are bit-identical
    /// to the perturbed recipe's events after ingest normalization.
    pub fn presorted_control(&self) -> Recipe {
        let mut out = self.clone();
        for p in &mut out.phases {
            if let PhaseKind::Reorder { .. } = p.kind {
                p.kind = PhaseKind::Baseline;
            }
        }
        out.name = format!("{}_control", self.name);
        out
    }
}

fn parse_phase(p: &Json, index: usize) -> Result<Phase, ScenarioError> {
    let name = opt_str(p, "name", "")?.to_string();
    let name = if name.is_empty() {
        format!("phase{}", index)
    } else {
        name
    };
    let events = req_usize(p, "events")?;
    if events == 0 {
        return Err(ScenarioError::new(format!(
            "phase '{}' needs a positive 'events' count",
            name
        )));
    }
    let kind_str = opt_str(p, "kind", "baseline")?;
    let kind = match kind_str {
        "baseline" => PhaseKind::Baseline,
        "flash_crowd" => PhaseKind::FlashCrowd {
            compression: opt_f64(p, "compression", 10.0)?,
            hubs: opt_usize(p, "hubs", 16)?.max(1),
        },
        "churn" => PhaseKind::Churn {
            rotate: opt_f64(p, "rotate", 1.0)?,
        },
        "skew_shift" => PhaseKind::SkewShift {
            skew: opt_f64(p, "skew", 4.0)?,
        },
        "reorder" => PhaseKind::Reorder {
            window: opt_usize(p, "window", 64)?.max(2),
            duplicate_every: opt_usize(p, "duplicate_every", 0)?,
        },
        other => {
            return Err(ScenarioError::new(format!(
                "phase '{}' has unknown kind '{}' \
                 (expected baseline|flash_crowd|churn|skew_shift|reorder)",
                name, other
            )))
        }
    };
    Ok(Phase { name, events, kind })
}

fn req_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, ScenarioError> {
    json.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| ScenarioError::new(format!("recipe needs a string field '{}'", key)))
}

fn opt_str<'a>(json: &'a Json, key: &str, default: &'static str) -> Result<&'a str, ScenarioError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| ScenarioError::new(format!("field '{}' must be a string", key))),
    }
}

fn req_usize(json: &Json, key: &str) -> Result<usize, ScenarioError> {
    json.get(key).and_then(|v| v.as_usize()).ok_or_else(|| {
        ScenarioError::new(format!(
            "recipe needs a non-negative integer field '{}'",
            key
        ))
    })
}

fn opt_usize(json: &Json, key: &str, default: usize) -> Result<usize, ScenarioError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            ScenarioError::new(format!("field '{}' must be a non-negative integer", key))
        }),
    }
}

fn opt_f64(json: &Json, key: &str, default: f64) -> Result<f64, ScenarioError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ScenarioError::new(format!("field '{}' must be a number", key))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "name": "t",
        "seed": 7,
        "nodes": 100,
        "feature_dim": 4,
        "skew": 1.5,
        "burstiness": 0.2,
        "repeat_prob": 0.4,
        "chunk_size": 64,
        "train": { "model": "tgn", "dim": 8, "batch": 32, "epochs": 2 },
        "phases": [
            { "name": "a", "kind": "baseline", "events": 100 },
            { "name": "b", "kind": "reorder", "events": 90, "window": 16,
              "duplicate_every": 9 },
            { "name": "c", "kind": "flash_crowd", "events": 50,
              "compression": 20, "hubs": 4 }
        ]
    }"#;

    #[test]
    fn parses_the_full_schema() {
        let r = Recipe::parse(SAMPLE).expect("sample is valid");
        assert_eq!(r.name, "t");
        assert_eq!(r.seed, 7);
        assert_eq!(r.nodes, 100);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.base_events(), 240);
        // 90 / 9 = 10 duplicates on top.
        assert_eq!(r.delivered_events(), 250);
        assert_eq!(r.max_reorder_window(), 16);
        assert_eq!(r.train.epochs, 2);
        assert_eq!(
            r.phases[2].kind,
            PhaseKind::FlashCrowd {
                compression: 20.0,
                hubs: 4
            }
        );
    }

    #[test]
    fn missing_fields_name_the_field() {
        let err = Recipe::parse(r#"{"seed": 1}"#).expect_err("name is required");
        assert!(err.to_string().contains("'name'"));
        let err = Recipe::parse(r#"{"name": "x", "seed": 1}"#).expect_err("nodes required");
        assert!(err.to_string().contains("'nodes'"));
    }

    #[test]
    fn unknown_phase_kind_is_rejected() {
        let text = r#"{"name": "x", "seed": 1, "nodes": 10,
                       "phases": [{"kind": "meteor", "events": 5}]}"#;
        let err = Recipe::parse(text).expect_err("meteor is not a phase kind");
        assert!(err.to_string().contains("meteor"));
    }

    #[test]
    fn scaled_shrinks_phases_and_renames() {
        let r = Recipe::parse(SAMPLE).expect("sample is valid");
        let s = r.scaled(0.1);
        assert_eq!(s.phases[0].events, 16); // 10 clamped to the minimum
        assert_eq!(s.name, "t@0.1");
        assert_eq!(r.scaled(1.0).name, "t");
    }

    #[test]
    fn presorted_control_neutralizes_reorder_only() {
        let r = Recipe::parse(SAMPLE).expect("sample is valid");
        let c = r.presorted_control();
        assert_eq!(c.phases[1].kind, PhaseKind::Baseline);
        assert_eq!(c.phases[2].kind, r.phases[2].kind);
        assert_eq!(c.base_events(), r.base_events());
        assert_eq!(c.delivered_events(), c.base_events());
    }
}
