//! `cascade-scenario`: recipe-driven workload replay with adversarial
//! stream perturbations.
//!
//! ```text
//! cascade_scenario --list                                # recipes/ catalog
//! cascade_scenario --recipe recipes/gdelt_full.json --generate-only --out /data/gdelt.cevt
//! cascade_scenario --recipe recipes/gdelt_full.json --train --store /data/gdelt.cevt
//! cascade_scenario --recipe recipes/adv_reorder.json --train          # on-the-fly regeneration
//! cascade_scenario --recipe recipes/adv_flash_crowd.json --serve-replay
//! ```
//!
//! Every run writes a structured report to
//! `bench_results/scenario_<name>.json` (override with `--report-dir`).
//! `--scale F` shrinks phase event counts for smoke runs; the scaled
//! name carries an `@F` suffix so reports never collide.

use std::path::PathBuf;

use cascade_scenario::{list_recipes, load_recipe, Recipe, ScenarioRunner};

struct Args {
    recipe: Option<String>,
    list: bool,
    recipes_dir: String,
    generate_only: bool,
    out: Option<String>,
    train: bool,
    store: Option<String>,
    pipelined: bool,
    dist: Option<usize>,
    serve_replay: bool,
    scale: f64,
    seed: Option<u64>,
    report_dir: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            recipe: None,
            list: false,
            recipes_dir: "recipes".into(),
            generate_only: false,
            out: None,
            train: false,
            store: None,
            pipelined: false,
            dist: None,
            serve_replay: false,
            scale: 1.0,
            seed: None,
            report_dir: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("missing value for {}", name))
            };
            match flag.as_str() {
                "--recipe" => a.recipe = Some(val("--recipe")?),
                "--list" => a.list = true,
                "--recipes-dir" => a.recipes_dir = val("--recipes-dir")?,
                "--generate-only" => a.generate_only = true,
                "--out" => a.out = Some(val("--out")?),
                "--train" => a.train = true,
                "--store" => a.store = Some(val("--store")?),
                "--pipelined" => a.pipelined = true,
                "--dist" => a.dist = Some(parse(&val("--dist")?)?),
                "--serve-replay" => a.serve_replay = true,
                "--scale" => a.scale = parse(&val("--scale")?)?,
                "--seed" => a.seed = Some(parse(&val("--seed")?)?),
                "--report-dir" => a.report_dir = Some(val("--report-dir")?),
                "--help" | "-h" => {
                    print_usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {}", other)),
            }
        }
        Ok(a)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{}'", s))
}

fn print_usage() {
    eprintln!(
        "cascade-scenario: recipe-driven workload replay\n\n\
         --recipe P        recipe JSON to run\n\
         --list            list recipes under --recipes-dir and exit\n\
         --recipes-dir D   recipe catalog directory        (default recipes)\n\
         --generate-only   write the delivered stream as CEVT chunks\n\
         --out P           CEVT output path                (with --generate-only)\n\
         --train           one streaming training run (out-of-core when\n\
                           --store names a generated CEVT file)\n\
         --store P         train from this CEVT store instead of regenerating\n\
         --pipelined       use the three-stage pipelined executor\n\
         --dist N          N-way in-process data-parallel training\n\
         --serve-replay    replay the stream through the serving engine\n\
         --scale F         scale phase event counts        (default 1.0)\n\
         --seed N          override the recipe seed\n\
         --report-dir D    report output directory (default bench_results)"
    );
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {}", e);
        print_usage();
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let store = args.store.as_ref().map(PathBuf::from);

    if args.list {
        let dir = PathBuf::from(&args.recipes_dir);
        let paths = list_recipes(&dir).map_err(|e| e.to_string())?;
        if paths.is_empty() {
            println!("no recipes under {}", dir.display());
        }
        for path in paths {
            match load_recipe(&path) {
                Ok(recipe) => println!(
                    "{:<32} nodes {:>9}  dim {:>4}  base events {:>10}  phases {}",
                    path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
                    recipe.nodes,
                    recipe.feature_dim,
                    recipe.base_events(),
                    recipe.phases.len()
                ),
                Err(e) => println!(
                    "{:<32} INVALID: {}",
                    path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
                    e
                ),
            }
        }
        return Ok(());
    }

    let recipe_path = args
        .recipe
        .as_deref()
        .ok_or("--recipe is required (or --list)")?;
    let mut recipe: Recipe = load_recipe(&PathBuf::from(recipe_path)).map_err(|e| e.to_string())?;
    if let Some(seed) = args.seed {
        recipe.seed = seed;
    }
    if args.scale != 1.0 {
        recipe = recipe.scaled(args.scale);
    }
    println!(
        "{}: {} nodes, dim {}, {} base / {} delivered events, {} phase(s), policy {}",
        recipe.name,
        recipe.nodes,
        recipe.feature_dim,
        recipe.base_events(),
        recipe.delivered_events(),
        recipe.phases.len(),
        ScenarioRunner::new(recipe.clone()).policy()
    );
    let runner = ScenarioRunner::new(recipe);
    let report_dir = args.report_dir.as_ref().map(PathBuf::from);

    let mut ran = false;
    let finish = |report: cascade_scenario::ScenarioReport| -> Result<(), String> {
        println!(
            "[{}] {:.2}s | {:.0} events/s | peak RSS {:.1} MiB",
            report.mode,
            report.wall_secs,
            report.events_per_sec,
            report.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        for (i, loss) in report.epoch_losses.iter().enumerate() {
            println!("  epoch {:>2}: loss {:.4}", i, loss);
        }
        for phase in &report.phases {
            println!(
                "  phase {:<20} [{}] {:>7} events, {:>5} batches, mean loss {:.4}",
                phase.name, phase.kind, phase.events, phase.batches, phase.mean_loss
            );
        }
        let path = report
            .write(report_dir.as_deref())
            .map_err(|e| e.to_string())?;
        println!("  report -> {}", path.display());
        Ok(())
    };

    if args.generate_only {
        let out = args
            .out
            .as_deref()
            .ok_or("--generate-only requires --out")?;
        let report = runner
            .generate(&PathBuf::from(out))
            .map_err(|e| e.to_string())?;
        println!("wrote delivered stream to {}", out);
        finish(report)?;
        ran = true;
    }
    if args.train {
        let report = runner
            .train(store.as_deref(), args.pipelined)
            .map_err(|e| e.to_string())?;
        finish(report)?;
        ran = true;
    }
    if let Some(workers) = args.dist {
        let report = runner.train_dist(workers).map_err(|e| e.to_string())?;
        finish(report)?;
        ran = true;
    }
    if args.serve_replay {
        let scratch = std::env::temp_dir();
        let report = runner.serve_replay(&scratch).map_err(|e| e.to_string())?;
        finish(report)?;
        ran = true;
    }
    if !ran {
        return Err("pick an action: --generate-only, --train, --dist N, or --serve-replay".into());
    }
    Ok(())
}
