//! cascade-scenario: recipe-driven workload replay with adversarial
//! stream perturbations.
//!
//! A [`Recipe`] is a small JSON document describing a synthetic
//! temporal-graph workload: node-id space, hub-skew exponent,
//! burstiness, training shape, and an ordered list of mid-stream
//! perturbation phases (flash crowds, node churn, skew shifts,
//! duplicate/out-of-order delivery). [`ScenarioSource`] turns a recipe
//! into a deterministic, seed-addressable event stream that never
//! materializes in RAM — it implements the same
//! [`EventSource`](cascade_tgraph::EventSource) contract the streaming
//! trainer, pipelined executor, and dist followers already consume, and
//! [`generate_to_store`] spills the identical bytes into CEVT chunks
//! for multi-GB out-of-core runs.
//!
//! [`ScenarioRunner`] drives a recipe end to end (generate, train,
//! train-pipelined, train-dist, serve-replay) and emits a structured
//! [`ScenarioReport`] — peak RSS, sustained events/sec, per-phase loss
//! trajectory — to `bench_results/scenario_<name>.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod recipe;
mod report;
mod rss;
mod runner;

pub use gen::{feature_row_into, generate_to_store, ScenarioSource, PARTNER_SLOTS_MAX};
pub use recipe::{Phase, PhaseKind, Recipe, TrainSpec};
pub use report::{list_recipes, load_recipe, proc_self_status, PhaseLoss, ScenarioReport};
pub use rss::{current_rss_bytes, peak_rss_bytes, Stopwatch};
pub use runner::ScenarioRunner;

/// A scenario-layer failure: recipe schema violations, generation
/// invariant breaks, or a wrapped store/training error.
#[derive(Debug)]
pub struct ScenarioError {
    message: String,
}

impl ScenarioError {
    /// Wraps a message.
    pub fn new(message: impl Into<String>) -> Self {
        ScenarioError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario error: {}", self.message)
    }
}

impl std::error::Error for ScenarioError {}
