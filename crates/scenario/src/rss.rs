//! Scenario telemetry: wall-clock stopwatch and resident-set sampling.
//!
//! This is the crate's allowlisted telemetry module (see the
//! `cascade-lint` TELEMETRY scope): clock readings originate here and
//! flow only into [`ScenarioReport`](crate::ScenarioReport)s — never
//! into the generated stream or training state. The raw
//! `/proc/self/status` read lives in the designated I/O module
//! ([`report`](crate::report)); this module only parses it.
//!
//! `VmHWM` (the peak) is process-global and monotone: it never resets,
//! so a bound on *growth* between two samples, not an absolute value,
//! is what the RSS-independence test asserts.

use std::time::Instant;

use crate::report::proc_self_status;

/// A started wall-clock timer.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Seconds since [`start`](Stopwatch::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Peak resident set (`VmHWM`) in bytes, `None` off Linux or when
/// `/proc` is unavailable.
pub fn peak_rss_bytes() -> Option<usize> {
    status_field_bytes("VmHWM:")
}

/// Current resident set (`VmRSS`) in bytes, `None` off Linux or when
/// `/proc` is unavailable.
pub fn current_rss_bytes() -> Option<usize> {
    status_field_bytes("VmRSS:")
}

fn status_field_bytes(key: &str) -> Option<usize> {
    parse_status_field(&proc_self_status()?, key)
}

/// Extracts a `kB` field from `/proc/self/status` text.
fn parse_status_field(status: &str, key: &str) -> Option<usize> {
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| {
            l[key.len()..]
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<usize>()
                .ok()
        })
        .map(|kib| kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_fields() {
        let status = "Name:\tcargo\nVmHWM:\t  123456 kB\nVmRSS:\t   7890 kB\n";
        assert_eq!(parse_status_field(status, "VmHWM:"), Some(123456 * 1024));
        assert_eq!(parse_status_field(status, "VmRSS:"), Some(7890 * 1024));
        assert_eq!(parse_status_field(status, "VmPeak:"), None);
    }

    #[test]
    fn live_sampling_works_on_linux() {
        // The repo's CI and dev containers are Linux; elsewhere the
        // samplers degrade to None and reports record zero.
        if let Some(peak) = peak_rss_bytes() {
            assert!(peak > 0);
            let current = current_rss_bytes().expect("VmRSS accompanies VmHWM");
            assert!(current > 0);
            assert!(peak >= current / 2, "peak is near or above current");
        }
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        let spin: u64 = (0..10_000u64).sum();
        assert!(spin > 0);
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
