//! The streaming scenario generator: turns a [`Recipe`] into a
//! delivered event stream, one chunk at a time, in bounded memory.
//!
//! Two properties carry the whole subsystem:
//!
//! 1. **Seed-addressable determinism.** Generation is a pure function
//!    of `(recipe, seed)`: every draw comes from one of two `DetRng`
//!    streams (base dynamics; delivery scrambling), timestamps are
//!    forced strictly increasing bit-deterministically, and feature
//!    rows are a pure hash of `(seed, base event id)` — so a duplicate
//!    delivery carries bit-identical features to its original, and a
//!    dist follower regenerating the recipe produces byte-identical
//!    CEVT chunks to the leader's file.
//! 2. **Bounded state.** Generator memory is O(active-node slots +
//!    reorder window + one chunk): a direct-mapped recent-partner table
//!    (capped at [`PARTNER_SLOTS_MAX`] slots), one scramble block, and
//!    the staged chunk. Event count never enters the footprint, which
//!    is what the RSS-independence test asserts by generating a recipe
//!    pair 16x apart in length.
//!
//! Base dynamics follow the `tgraph::synth` family: a sliding
//! active-node window sweeps the id space (churn = faster sweep),
//! sources are drawn power-law-skewed inside the window (flash crowd =
//! tiny hub set + compressed inter-arrivals; skew shift = exponent
//! jump), and destinations preferentially repeat recent partners.
//! Delivery perturbation (reorder/duplication) is a pure post-stage: it
//! permutes a block and re-delivers marked events without touching base
//! dynamics or the base RNG, so a recipe's
//! [`presorted_control`](Recipe::presorted_control) generates the
//! bit-identical base stream.

use std::collections::VecDeque;
use std::path::Path;

use cascade_store::{ChunkWriter, StoreSummary};
use cascade_tgraph::{Event, EventChunk, EventSource, SourceError};
use cascade_util::DetRng;

use crate::recipe::{PhaseKind, Recipe};
use crate::ScenarioError;

/// Upper bound on recent-partner table slots: above this node count,
/// slots are shared by `id % slots` (deterministic, and bounded memory
/// on million-node recipes).
pub const PARTNER_SLOTS_MAX: usize = 65_536;

/// Stream-seed split between base dynamics and delivery scrambling:
/// the scrambler must not consume base draws, or disabling a reorder
/// phase would shift every later event.
const SCRAMBLE_SEED_XOR: u64 = 0x05ca_1ab1_e0dd_ba11;

/// Burst gaps are this fraction of a normal inter-arrival gap.
const BURST_GAP_SCALE: f64 = 0.05;

/// Writes the deterministic feature row of base event `idx` into `out`
/// (cleared first). A splitmix64-seeded xorshift per row: random access
/// by event id, no per-stream state.
pub fn feature_row_into(seed: u64, idx: u64, dim: usize, out: &mut Vec<f32>) {
    out.clear();
    if dim == 0 {
        return;
    }
    // splitmix64 of (seed, idx) decorrelates consecutive rows.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(idx.wrapping_add(1)));
    state ^= state >> 30;
    state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    state ^= state >> 27;
    state = state.wrapping_mul(0x94d0_49bb_1331_11eb);
    state |= 1;
    for _ in 0..dim {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let v = (state >> 40) as f32 / (1u64 << 24) as f32;
        out.push(v * 2.0 - 1.0);
    }
}

fn skewed_index(rng: &mut DetRng, n: usize, k: f64) -> usize {
    let u: f64 = rng.f64();
    let idx = (u.powf(k) * n as f64) as usize;
    idx.min(n.saturating_sub(1))
}

/// A delivered event plus the base event id its feature row hashes
/// from (duplicates share their original's id).
#[derive(Clone, Copy, Debug)]
struct Delivered {
    event: Event,
    base_id: u64,
}

/// An [`EventSource`] that generates a recipe's delivered stream on the
/// fly. `num_events` is [`Recipe::delivered_events`] — the raw stream
/// including injected duplicates; wrap in a
/// [`ReorderingSource`](cascade_tgraph::ReorderingSource) to normalize.
pub struct ScenarioSource {
    recipe: Recipe,
    delivered_total: usize,
    partner_slots: usize,
    // --- generation state, reset() re-derives all of it ---
    rng: DetRng,
    scramble_rng: DetRng,
    t: f64,
    frontier: f64,
    partner: Vec<u32>,
    partner_len: Vec<u8>,
    partner_next: Vec<u8>,
    phase_idx: usize,
    phase_pos: usize,
    hub_base: usize,
    base_idx: u64,
    out: VecDeque<Delivered>,
    emitted: usize,
    next_chunk_index: usize,
    feat_scratch: Vec<f32>,
}

impl ScenarioSource {
    /// Builds the generator for `recipe`.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the recipe's node count exceeds
    /// the `u32` id space or its partner cap exceeds 255.
    pub fn new(recipe: Recipe) -> Result<Self, ScenarioError> {
        if recipe.nodes > u32::MAX as usize {
            return Err(ScenarioError::new(format!(
                "recipe '{}' declares {} nodes; node ids are u32",
                recipe.name, recipe.nodes
            )));
        }
        if recipe.partner_cap == 0 || recipe.partner_cap > u8::MAX as usize {
            return Err(ScenarioError::new(format!(
                "recipe '{}' partner_cap {} out of range (1..=255)",
                recipe.name, recipe.partner_cap
            )));
        }
        let delivered_total = recipe.delivered_events();
        let partner_slots = recipe.nodes.min(PARTNER_SLOTS_MAX);
        let mut src = ScenarioSource {
            delivered_total,
            partner_slots,
            rng: DetRng::new(0),
            scramble_rng: DetRng::new(0),
            t: 0.0,
            frontier: 0.0,
            partner: Vec::new(),
            partner_len: Vec::new(),
            partner_next: Vec::new(),
            phase_idx: 0,
            phase_pos: 0,
            hub_base: 0,
            base_idx: 0,
            out: VecDeque::new(),
            emitted: 0,
            next_chunk_index: 0,
            feat_scratch: Vec::new(),
            recipe,
        };
        src.rewind();
        Ok(src)
    }

    /// The recipe driving this generator.
    pub fn recipe(&self) -> &Recipe {
        &self.recipe
    }

    fn span(&self) -> usize {
        ((self.recipe.nodes as f64 * self.recipe.pool_fraction) as usize)
            .clamp(2.min(self.recipe.nodes), self.recipe.nodes)
    }

    fn rewind(&mut self) {
        self.rng = DetRng::new(self.recipe.seed);
        self.scramble_rng = DetRng::new(self.recipe.seed ^ SCRAMBLE_SEED_XOR);
        self.t = 0.0;
        self.frontier = self.span() as f64;
        let cap = self.recipe.partner_cap;
        self.partner = vec![u32::MAX; self.partner_slots * cap];
        self.partner_len = vec![0; self.partner_slots];
        self.partner_next = vec![0; self.partner_slots];
        self.phase_idx = 0;
        self.phase_pos = 0;
        self.hub_base = 0;
        self.base_idx = 0;
        self.out.clear();
        self.emitted = 0;
        self.next_chunk_index = 0;
    }

    /// Advances past exhausted phases; false when the stream is done.
    fn seek_phase(&mut self) -> bool {
        while self.phase_idx < self.recipe.phases.len() {
            if self.phase_pos < self.recipe.phases[self.phase_idx].events {
                return true;
            }
            self.phase_idx += 1;
            self.phase_pos = 0;
        }
        false
    }

    /// Generates the next base event under the current phase's
    /// dynamics. Caller must have positioned a live phase.
    fn next_base_event(&mut self) -> Delivered {
        let phase = &self.recipe.phases[self.phase_idx];
        let kind = phase.kind;
        let base_total = self.recipe.base_events().max(1);
        let span = self.span();
        let nodes = self.recipe.nodes;

        // Inter-arrival gap: exponential with mean 1, bursty tail,
        // flash-crowd compression.
        let u: f64 = self.rng.f64();
        let mut dt = -(u.max(1e-12)).ln();
        if self.recipe.burstiness > 0.0 && self.rng.chance(self.recipe.burstiness) {
            dt *= BURST_GAP_SCALE;
        }
        if let PhaseKind::FlashCrowd { compression, .. } = kind {
            dt /= compression.max(1.0);
        }
        // Strictly increasing timestamps, bit-deterministically: when
        // the gap underflows the f64 resolution at the current
        // magnitude, step to the next representable value instead.
        let stepped = self.t + dt;
        self.t = if stepped > self.t {
            stepped
        } else {
            f64::from_bits(self.t.to_bits() + 1)
        };

        // Active-node window sweep; churn sweeps faster.
        let mut advance = (nodes.saturating_sub(span)) as f64 / base_total as f64;
        if let PhaseKind::Churn { rotate } = kind {
            advance += rotate.max(0.0) * span as f64 / phase.events as f64;
        }
        self.frontier = (self.frontier + advance).min(nodes as f64);
        let window_base = (self.frontier as usize).saturating_sub(span).min(nodes - 1);

        let skew = match kind {
            PhaseKind::SkewShift { skew } => skew,
            _ => self.recipe.skew,
        };
        // Flash crowds pin their hub set to the active window as it
        // stood when the phase began — the crowd hammers a fixed set
        // of hot nodes even while the window keeps sweeping.
        if self.phase_pos == 0 {
            self.hub_base = window_base;
        }
        let src = match kind {
            PhaseKind::FlashCrowd { hubs, .. } => {
                self.hub_base + skewed_index(&mut self.rng, hubs.min(span).max(1), skew)
            }
            _ => window_base + skewed_index(&mut self.rng, span, skew),
        };

        // Destination: repeat a recent partner, else a fresh skewed
        // draw from the window.
        let cap = self.recipe.partner_cap;
        let slot = src % self.partner_slots;
        let occupied = self.partner_len[slot] as usize;
        let repeat = self.recipe.repeat_prob > 0.0 && self.rng.chance(self.recipe.repeat_prob);
        let dst = if repeat && occupied > 0 {
            self.partner[slot * cap + self.rng.index(occupied)] as usize
        } else {
            let mut d = window_base + skewed_index(&mut self.rng, span, skew);
            if d == src {
                d = window_base + (d - window_base + 1) % span;
            }
            d
        };

        // Remember the partner (fixed-size ring per slot).
        let next = self.partner_next[slot] as usize;
        self.partner[slot * cap + next] = dst as u32;
        self.partner_next[slot] = ((next + 1) % cap) as u8;
        if occupied < cap {
            self.partner_len[slot] = (occupied + 1) as u8;
        }

        let ev = Event::new(src as u32, dst as u32, self.t);
        let id = self.base_idx;
        self.base_idx += 1;
        self.phase_pos += 1;
        Delivered {
            event: ev,
            base_id: id,
        }
    }

    /// Generates one delivery block into `self.out`: a scrambled,
    /// duplicate-injected window for reorder phases, a plain run of
    /// base events otherwise.
    fn fill_block(&mut self) -> bool {
        if !self.seek_phase() {
            return false;
        }
        let phase = &self.recipe.phases[self.phase_idx];
        let remaining = phase.events - self.phase_pos;
        match phase.kind {
            PhaseKind::Reorder {
                window,
                duplicate_every,
            } => {
                let take = window.min(remaining);
                let phase_start = self.phase_pos;
                let mut block: Vec<Delivered> = Vec::with_capacity(take);
                for _ in 0..take {
                    block.push(self.next_base_event());
                }
                // Fisher-Yates on the block with the dedicated scramble
                // stream: max displacement `window - 1`, within the
                // consumer's BufferedReorder(window) tolerance.
                for i in (1..block.len()).rev() {
                    let j = self.scramble_rng.index(i + 1);
                    block.swap(i, j);
                }
                for (off, d) in block.iter().enumerate() {
                    self.out.push_back(*d);
                    // Cadence is in *base* phase positions, so the
                    // duplicate count is exact and declared up front.
                    if duplicate_every > 0 {
                        let phase_pos = phase_start + off;
                        if phase_pos % duplicate_every == duplicate_every - 1 {
                            self.out.push_back(*d);
                        }
                    }
                }
            }
            _ => {
                let take = remaining.min(self.recipe.chunk_size.max(64));
                for _ in 0..take {
                    let d = self.next_base_event();
                    self.out.push_back(d);
                }
            }
        }
        true
    }
}

impl EventSource for ScenarioSource {
    fn num_nodes(&self) -> usize {
        self.recipe.nodes
    }

    /// Delivered events (base + injected duplicates).
    fn num_events(&self) -> usize {
        self.delivered_total
    }

    fn feature_dim(&self) -> usize {
        self.recipe.feature_dim
    }

    fn chunk_size(&self) -> usize {
        self.recipe.chunk_size
    }

    fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError> {
        let target = self.recipe.chunk_size;
        while self.out.len() < target && self.fill_block() {}
        if self.out.is_empty() {
            return Ok(None);
        }
        let take = self.out.len().min(target);
        let dim = self.recipe.feature_dim;
        let mut events = Vec::with_capacity(take);
        let mut features = Vec::with_capacity(take * dim);
        for _ in 0..take {
            let d = self
                .out
                .pop_front()
                .unwrap_or_else(|| unreachable!("out holds at least `take` events"));
            events.push(d.event);
            feature_row_into(self.recipe.seed, d.base_id, dim, &mut self.feat_scratch);
            features.extend_from_slice(&self.feat_scratch);
        }
        let chunk = EventChunk {
            index: self.next_chunk_index,
            base: self.emitted,
            events,
            features,
        };
        self.next_chunk_index += 1;
        self.emitted += chunk.events.len();
        Ok(Some(chunk))
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.rewind();
        Ok(())
    }

    fn name(&self) -> String {
        self.recipe.name.clone()
    }
}

/// Streams `recipe`'s delivered events straight into a CEVT store file
/// at `path` — one chunk resident at a time, so generation memory is
/// independent of stream length.
///
/// # Errors
///
/// Returns a [`ScenarioError`] on recipe misuse or any store I/O
/// failure.
pub fn generate_to_store(recipe: &Recipe, path: &Path) -> Result<StoreSummary, ScenarioError> {
    let mut source = ScenarioSource::new(recipe.clone())?;
    let mut writer = ChunkWriter::create(path, recipe.nodes, recipe.feature_dim, recipe.chunk_size)
        .map_err(|e| {
            ScenarioError::new(format!("cannot create store {}: {}", path.display(), e))
        })?;
    let dim = recipe.feature_dim;
    while let Some(chunk) = source
        .next_chunk()
        .map_err(|e| ScenarioError::new(format!("generation failed: {}", e)))?
    {
        for (i, ev) in chunk.events.iter().enumerate() {
            writer
                .push(*ev, &chunk.features[i * dim..(i + 1) * dim])
                .map_err(|e| ScenarioError::new(format!("store write failed: {}", e)))?;
        }
    }
    writer
        .finish()
        .map_err(|e| ScenarioError::new(format!("store finish failed: {}", e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::Phase;

    fn small_recipe() -> Recipe {
        Recipe {
            name: "gen-test".into(),
            seed: 11,
            nodes: 200,
            feature_dim: 4,
            skew: 1.8,
            burstiness: 0.3,
            repeat_prob: 0.5,
            pool_fraction: 0.3,
            partner_cap: 4,
            chunk_size: 64,
            train: crate::recipe::TrainSpec::default(),
            phases: vec![
                Phase {
                    name: "warm".into(),
                    events: 300,
                    kind: PhaseKind::Baseline,
                },
                Phase {
                    name: "storm".into(),
                    events: 200,
                    kind: PhaseKind::Reorder {
                        window: 16,
                        duplicate_every: 10,
                    },
                },
                Phase {
                    name: "crowd".into(),
                    events: 100,
                    kind: PhaseKind::FlashCrowd {
                        compression: 10.0,
                        hubs: 4,
                    },
                },
            ],
        }
    }

    fn drain(src: &mut ScenarioSource) -> (Vec<Event>, Vec<f32>) {
        let mut events = Vec::new();
        let mut features = Vec::new();
        while let Some(c) = src.next_chunk().expect("generation never fails") {
            events.extend_from_slice(&c.events);
            features.extend_from_slice(&c.features);
        }
        (events, features)
    }

    #[test]
    fn delivered_count_matches_declaration() {
        let r = small_recipe();
        let mut src = ScenarioSource::new(r.clone()).expect("recipe is valid");
        let (events, features) = drain(&mut src);
        assert_eq!(events.len(), r.delivered_events());
        assert_eq!(events.len(), 600 + 20);
        assert_eq!(features.len(), events.len() * r.feature_dim);
        assert!(events
            .iter()
            .all(|e| (e.src.0 as usize) < r.nodes && (e.dst.0 as usize) < r.nodes));
    }

    #[test]
    fn regeneration_is_bit_identical() {
        let r = small_recipe();
        let mut a = ScenarioSource::new(r.clone()).expect("recipe is valid");
        let mut b = ScenarioSource::new(r).expect("recipe is valid");
        let (ea, fa) = drain(&mut a);
        let (eb, fb) = drain(&mut b);
        assert_eq!(ea.len(), eb.len());
        assert!(ea.iter().zip(&eb).all(|(x, y)| x.src == y.src
            && x.dst == y.dst
            && x.time.to_bits() == y.time.to_bits()));
        assert!(fa.iter().zip(&fb).all(|(x, y)| x.to_bits() == y.to_bits()));

        // reset() replays identically too.
        a.reset().expect("reset never fails");
        let (er, fr) = drain(&mut a);
        assert_eq!(er.len(), ea.len());
        assert!(fr.iter().zip(&fa).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn base_times_are_strictly_increasing_outside_reorder_phases() {
        let mut r = small_recipe();
        r.phases
            .retain(|p| !matches!(p.kind, PhaseKind::Reorder { .. }));
        let mut src = ScenarioSource::new(r).expect("recipe is valid");
        let (events, _) = drain(&mut src);
        for w in events.windows(2) {
            assert!(w[1].time > w[0].time, "timestamps must strictly increase");
        }
    }

    #[test]
    fn control_recipe_generates_the_sorted_base_stream() {
        let r = small_recipe();
        let control = r.presorted_control();
        let mut perturbed = ScenarioSource::new(r.clone()).expect("valid");
        let mut sorted = ScenarioSource::new(control).expect("valid");
        let (mut ep, _) = drain(&mut perturbed);
        let (ec, _) = drain(&mut sorted);
        // Normalize the perturbed stream by hand: drop duplicates, sort.
        ep.dedup_by(|a, b| {
            a.src == b.src && a.dst == b.dst && a.time.to_bits() == b.time.to_bits()
        });
        ep.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times are finite"));
        ep.dedup_by(|a, b| {
            a.src == b.src && a.dst == b.dst && a.time.to_bits() == b.time.to_bits()
        });
        assert_eq!(ep.len(), ec.len());
        assert!(ep.iter().zip(&ec).all(|(x, y)| x.src == y.src
            && x.dst == y.dst
            && x.time.to_bits() == y.time.to_bits()));
    }

    #[test]
    fn flash_crowd_compresses_interarrivals_and_concentrates_sources() {
        let mut r = small_recipe();
        r.burstiness = 0.0;
        r.phases = vec![
            Phase {
                name: "calm".into(),
                events: 500,
                kind: PhaseKind::Baseline,
            },
            Phase {
                name: "crowd".into(),
                events: 500,
                kind: PhaseKind::FlashCrowd {
                    compression: 50.0,
                    hubs: 2,
                },
            },
        ];
        let mut src = ScenarioSource::new(r).expect("valid");
        let (events, _) = drain(&mut src);
        let calm_span = events[499].time - events[0].time;
        let crowd_span = events[999].time - events[500].time;
        assert!(
            crowd_span * 5.0 < calm_span,
            "flash crowd must compress time: calm {} vs crowd {}",
            calm_span,
            crowd_span
        );
        let crowd_srcs: std::collections::BTreeSet<u32> =
            events[500..].iter().map(|e| e.src.0).collect();
        assert!(
            crowd_srcs.len() <= 4,
            "sources must concentrate on the hub set, got {}",
            crowd_srcs.len()
        );
    }

    #[test]
    fn feature_rows_are_random_access_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        feature_row_into(7, 123, 8, &mut a);
        feature_row_into(7, 123, 8, &mut b);
        assert_eq!(a, b);
        feature_row_into(7, 124, 8, &mut b);
        assert_ne!(a, b, "adjacent rows must differ");
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        feature_row_into(7, 123, 0, &mut a);
        assert!(a.is_empty());
    }
}
