//! The scenario runner: drives a [`Recipe`] through the repo's
//! existing entry points — out-of-core streaming training
//! (`cascade-core`), the pipelined executor (`cascade-exec`),
//! data-parallel training (`cascade-dist`), and live-ingest replay
//! (`cascade-serve`) — and distills each run into a
//! [`ScenarioReport`].
//!
//! Every mode consumes the stream through a
//! [`ReorderingSource`]: recipes with reorder phases get
//! `BufferedReorder` sized to the recipe's widest scramble window,
//! well-behaved recipes get the `Reject` validator — so a generator
//! regression that breaks ordering fails loudly instead of training on
//! garbage. Per-phase loss is carved out of the final epoch's batch
//! trajectory by mapping each batch's first event id onto the recipe's
//! phase boundaries (streaming modes only; the dist runtime reports
//! epoch granularity).

use std::path::Path;

use cascade_core::{
    train_streaming, BatchingStrategy, CascadeConfig, CascadeScheduler, TrainConfig, TrainReport,
};
use cascade_dist::{train_dist, DistConfig};
use cascade_exec::{train_streamed, PipelineConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_serve::{Engine, EngineConfig};
use cascade_store::StreamingEventSource;
use cascade_tgraph::{
    Dataset, EdgeFeatures, EventSource, EventStream, ReorderPolicy, ReorderingSource,
};

use crate::gen::{generate_to_store, ScenarioSource};
use crate::recipe::Recipe;
use crate::report::{PhaseLoss, ScenarioReport};
use crate::rss::{peak_rss_bytes, Stopwatch};
use crate::ScenarioError;

/// Drives one recipe through generation, training, or replay.
pub struct ScenarioRunner {
    recipe: Recipe,
}

impl ScenarioRunner {
    /// Wraps `recipe`.
    pub fn new(recipe: Recipe) -> Self {
        ScenarioRunner { recipe }
    }

    /// The recipe being driven.
    pub fn recipe(&self) -> &Recipe {
        &self.recipe
    }

    /// The normalization policy this recipe's stream needs: buffered
    /// reordering sized to the widest scramble window, else the strict
    /// validator.
    pub fn policy(&self) -> ReorderPolicy {
        let window = self.recipe.max_reorder_window();
        if window > 0 {
            ReorderPolicy::BufferedReorder(window)
        } else {
            ReorderPolicy::Reject
        }
    }

    /// Generates the recipe's delivered stream into a CEVT store file,
    /// reporting generation throughput and peak RSS.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] on recipe misuse or store I/O
    /// failure.
    pub fn generate(&self, out: &Path) -> Result<ScenarioReport, ScenarioError> {
        let sw = Stopwatch::start();
        let summary = generate_to_store(&self.recipe, out)?;
        let secs = sw.elapsed_secs();
        let mut report = self.blank_report("generate");
        report.wall_secs = secs;
        report.events_per_sec = rate(summary.events, secs);
        Ok(report)
    }

    /// Trains through the streaming path. With `store` the stream is
    /// read back out-of-core from a generated CEVT file; without it the
    /// stream regenerates on the fly (bit-identical either way). With
    /// `pipelined` the three-stage executor drives the same splits.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] on recipe misuse, store corruption,
    /// or a training-driver failure.
    pub fn train(
        &self,
        store: Option<&Path>,
        pipelined: bool,
    ) -> Result<ScenarioReport, ScenarioError> {
        let (train_report, secs) = match store {
            Some(path) => {
                let inner = StreamingEventSource::open(path, 2).map_err(|e| {
                    ScenarioError::new(format!("cannot open store {}: {}", path.display(), e))
                })?;
                if inner.num_events() != self.recipe.delivered_events() {
                    return Err(ScenarioError::new(format!(
                        "store {} holds {} events but recipe '{}' delivers {}",
                        path.display(),
                        inner.num_events(),
                        self.recipe.name,
                        self.recipe.delivered_events()
                    )));
                }
                self.train_source(inner, pipelined)?
            }
            None => {
                let inner = ScenarioSource::new(self.recipe.clone())?;
                self.train_source(inner, pipelined)?
            }
        };
        let mode = if pipelined {
            "train-pipelined"
        } else {
            "train"
        };
        let mut report = self.blank_report(mode);
        report.wall_secs = secs;
        report.events_per_sec = rate(
            self.recipe.delivered_events() * self.recipe.train.epochs,
            secs,
        );
        report.epochs = train_report.epochs;
        report.epoch_losses = train_report.epoch_losses.clone();
        report.final_train_loss = train_report.final_train_loss;
        report.val_loss = train_report.val_loss;
        report.phases = self.phase_losses(&train_report);
        report.space = Some(train_report.space);
        Ok(report)
    }

    /// Trains `workers`-way data-parallel on the materialized
    /// normalized stream (the dist runtime batches an in-memory
    /// [`Dataset`]; per-phase losses are not available at epoch
    /// granularity).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] on recipe misuse or generation
    /// failure.
    pub fn train_dist(&self, workers: usize) -> Result<ScenarioReport, ScenarioError> {
        let data = self.realize_dataset()?;
        let spec = &self.recipe.train;
        let batch = spec.batch;
        // The dist runtime requires chunk_size to be a batch multiple
        // so batches never span chunks.
        let chunk = self.recipe.chunk_size.div_ceil(batch).max(1) * batch;
        let cfg = DistConfig {
            workers: workers.max(1),
            chunk_size: chunk,
            batch_size: batch,
            epochs: spec.epochs,
            lr: spec.lr as f32,
            clip_norm: Some(5.0),
            seed: self.recipe.seed,
        };
        let model_cfg = self.model_config()?;
        let sw = Stopwatch::start();
        let outcome = train_dist(&data, &model_cfg, &cfg);
        let secs = sw.elapsed_secs();
        let mut report = self.blank_report(&format!("train-dist{}", cfg.workers));
        report.wall_secs = secs;
        report.events_per_sec = rate(outcome.report.events, secs);
        report.epochs = outcome.report.epochs;
        report.epoch_losses = outcome.report.epoch_losses.clone();
        report.final_train_loss = outcome.report.epoch_losses.last().copied().unwrap_or(0.0);
        Ok(report)
    }

    /// Replays the normalized stream through the serving engine's
    /// ingest path (WAL + snapshot under `scratch`), measuring
    /// sustained ingest throughput.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] on recipe misuse or a serving-engine
    /// failure.
    pub fn serve_replay(&self, scratch: &Path) -> Result<ScenarioReport, ScenarioError> {
        let model = self.build_model()?;
        let stem = self.recipe.name.replace(['@', '/'], "_");
        let wal = scratch.join(format!("{}_replay.wal", stem));
        let snapshot = scratch.join(format!("{}_replay.csc", stem));
        let mut engine = Engine::open(model, EngineConfig::new(&wal, &snapshot))
            .map_err(|e| ScenarioError::new(format!("cannot open serve engine: {}", e)))?;

        let sw = Stopwatch::start();
        let acked = self.replay_into(&mut engine)?;
        let secs = sw.elapsed_secs();
        if acked != self.recipe.base_events() {
            return Err(ScenarioError::new(format!(
                "serve replay acked {} of {} events",
                acked,
                self.recipe.base_events()
            )));
        }
        let mut report = self.blank_report("serve-replay");
        report.wall_secs = secs;
        report.events_per_sec = rate(acked, secs);
        Ok(report)
    }

    /// Drains the normalized stream into the serving engine in
    /// train-batch-sized ingest calls, returning the acked event count.
    /// Deliberately clock-free: only recipe-derived data flows into
    /// `ingest`, which keeps replay deterministic and the determinism
    /// lint's taint analysis vacuously satisfied.
    fn replay_into(&self, engine: &mut Engine) -> Result<usize, ScenarioError> {
        let inner = ScenarioSource::new(self.recipe.clone())?;
        let mut source =
            ReorderingSource::with_declared_events(inner, self.policy(), self.recipe.base_events());
        let batch = self.recipe.train.batch;
        let dim = self.recipe.feature_dim;
        let mut acked = 0usize;
        while let Some(chunk) = source
            .next_chunk()
            .map_err(|e| ScenarioError::new(format!("replay stream failed: {}", e)))?
        {
            let mut start = 0usize;
            while start < chunk.events.len() {
                let end = (start + batch).min(chunk.events.len());
                let ack = engine
                    .ingest(
                        &chunk.events[start..end],
                        &chunk.features[start * dim..end * dim],
                    )
                    .map_err(|e| ScenarioError::new(format!("ingest failed: {}", e)))?;
                acked += ack.acked;
                start = end;
            }
        }
        Ok(acked)
    }

    /// Materializes the normalized stream as an in-memory [`Dataset`]
    /// (dist mode only — streaming modes never materialize).
    pub fn realize_dataset(&self) -> Result<Dataset, ScenarioError> {
        let inner = ScenarioSource::new(self.recipe.clone())?;
        let base = self.recipe.base_events();
        let dim = self.recipe.feature_dim;
        let mut source = ReorderingSource::with_declared_events(inner, self.policy(), base);
        let mut events = Vec::with_capacity(base);
        let mut feats = Vec::with_capacity(base * dim);
        while let Some(chunk) = source
            .next_chunk()
            .map_err(|e| ScenarioError::new(format!("generation failed: {}", e)))?
        {
            events.extend_from_slice(&chunk.events);
            feats.extend_from_slice(&chunk.features);
        }
        let stream = EventStream::new(events)
            .map_err(|e| ScenarioError::new(format!("normalized stream is unordered: {}", e)))?;
        let features = if dim == 0 {
            EdgeFeatures::none()
        } else {
            EdgeFeatures::new(feats, dim)
        };
        Ok(Dataset::new(self.recipe.name.clone(), stream, features))
    }

    fn model_config(&self) -> Result<ModelConfig, ScenarioError> {
        let spec = &self.recipe.train;
        let base = match spec.model.to_lowercase().as_str() {
            "jodie" => ModelConfig::jodie(),
            "tgn" => ModelConfig::tgn(),
            "apan" => ModelConfig::apan(),
            "dysat" => ModelConfig::dysat(),
            "tgat" => ModelConfig::tgat(),
            other => {
                return Err(ScenarioError::new(format!(
                    "recipe '{}' names unknown model '{}'",
                    self.recipe.name, other
                )))
            }
        };
        let mut cfg = base.with_dims(spec.dim, (spec.dim / 2).max(2));
        if cfg.sampling.count() > 4 {
            cfg = cfg.with_neighbors(4);
        }
        Ok(cfg)
    }

    fn build_model(&self) -> Result<MemoryTgnn, ScenarioError> {
        let cfg = self.model_config()?;
        Ok(MemoryTgnn::new(
            cfg,
            self.recipe.nodes,
            self.recipe.feature_dim,
            self.recipe.seed,
        ))
    }

    fn train_source<S: EventSource + Send>(
        &self,
        inner: S,
        pipelined: bool,
    ) -> Result<(TrainReport, f64), ScenarioError> {
        let mut source =
            ReorderingSource::with_declared_events(inner, self.policy(), self.recipe.base_events());
        let mut model = self.build_model()?;
        let spec = &self.recipe.train;
        let mut strategy = CascadeScheduler::new(CascadeConfig {
            preset_batch_size: spec.batch,
            seed: self.recipe.seed,
            ..CascadeConfig::default()
        });
        let cfg = TrainConfig {
            epochs: spec.epochs,
            lr: spec.lr as f32,
            eval_batch_size: spec.batch,
            clip_norm: Some(5.0),
            scale_lr_with_batch: true,
            ..TrainConfig::default()
        };
        let sw = Stopwatch::start();
        let report = if pipelined {
            train_streamed(
                &mut model,
                &mut source,
                &mut strategy as &mut dyn BatchingStrategy,
                &cfg,
                &PipelineConfig::default(),
            )
            .map_err(|e| ScenarioError::new(format!("pipelined training failed: {}", e)))?
        } else {
            train_streaming(
                &mut model,
                &mut source,
                &mut strategy as &mut dyn BatchingStrategy,
                &cfg,
            )
            .map_err(|e| ScenarioError::new(format!("streaming training failed: {}", e)))?
        };
        Ok((report, sw.elapsed_secs()))
    }

    /// Maps the final epoch's batch trajectory onto phase boundaries.
    fn phase_losses(&self, report: &TrainReport) -> Vec<PhaseLoss> {
        let n_train = self.recipe.base_events() * 70 / 100;
        // Split the cross-epoch batch series at train-split boundaries:
        // a batch's start id is its running event offset within the
        // epoch, and an epoch ends when the offsets reach the split.
        let mut epochs: Vec<Vec<(usize, u32, f32)>> = vec![Vec::new()];
        let mut cursor = 0usize;
        for (size, loss) in report.batch_sizes.iter().zip(&report.batch_losses) {
            if let Some(epoch) = epochs.last_mut() {
                epoch.push((cursor, *size, *loss));
            }
            cursor += *size as usize;
            if cursor >= n_train {
                epochs.push(Vec::new());
                cursor = 0;
            }
        }
        let empty = Vec::new();
        let last = epochs
            .iter()
            .rev()
            .find(|e| !e.is_empty())
            .unwrap_or(&empty);

        let mut out = Vec::with_capacity(self.recipe.phases.len());
        let mut start = 0usize;
        for phase in &self.recipe.phases {
            let end = start + phase.events;
            let mut batches = 0usize;
            let mut weighted = 0.0f64;
            let mut weight = 0.0f64;
            for (first, size, loss) in last {
                if *first >= start && *first < end {
                    batches += 1;
                    weighted += *loss as f64 * *size as f64;
                    weight += *size as f64;
                }
            }
            out.push(PhaseLoss {
                name: phase.name.clone(),
                kind: phase.kind.keyword().into(),
                events: phase.events,
                batches,
                mean_loss: if weight > 0.0 {
                    (weighted / weight) as f32
                } else {
                    0.0
                },
            });
            start = end;
        }
        out
    }

    fn blank_report(&self, mode: &str) -> ScenarioReport {
        ScenarioReport {
            name: self.recipe.name.clone(),
            seed: self.recipe.seed,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            mode: mode.into(),
            nodes: self.recipe.nodes,
            feature_dim: self.recipe.feature_dim,
            chunk_size: self.recipe.chunk_size,
            base_events: self.recipe.base_events(),
            delivered_events: self.recipe.delivered_events(),
            reorder_policy: self.policy().to_string(),
            peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
            wall_secs: 0.0,
            events_per_sec: 0.0,
            epochs: 0,
            epoch_losses: Vec::new(),
            final_train_loss: 0.0,
            val_loss: 0.0,
            phases: Vec::new(),
            space: None,
        }
    }
}

fn rate(events: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    }
}
