//! Generator-determinism acceptance: a `(recipe, seed)` pair is the
//! dataset. The same pair must produce bit-identical CEVT bytes across
//! two generation runs, and a store file must replay exactly what the
//! on-the-fly generator delivers — including under the chunk-modulo
//! partitioning dist followers use to regenerate a leader's shard
//! without a shared filesystem.

use std::path::PathBuf;

use cascade_scenario::{generate_to_store, load_recipe, ScenarioSource};
use cascade_store::StreamingEventSource;
use cascade_tgraph::{Event, EventSource, PartitionedSource};

fn repo_recipe(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../recipes")
        .join(name)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cascade_scenario_determinism");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir.join(format!("{}_{}", std::process::id(), name))
}

fn drain(source: &mut dyn EventSource) -> (Vec<Event>, Vec<f32>) {
    let mut events = Vec::new();
    let mut features = Vec::new();
    while let Some(chunk) = source.next_chunk().expect("source yields") {
        events.extend_from_slice(&chunk.events);
        features.extend_from_slice(&chunk.features);
    }
    (events, features)
}

fn assert_streams_equal(a: (Vec<Event>, Vec<f32>), b: (Vec<Event>, Vec<f32>), what: &str) {
    assert_eq!(a.0.len(), b.0.len(), "{}: event counts differ", what);
    for (i, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
        assert!(
            x.src == y.src && x.dst == y.dst && x.time.to_bits() == y.time.to_bits(),
            "{}: event {} differs: {:?} vs {:?}",
            what,
            i,
            x,
            y
        );
    }
    assert_eq!(a.1.len(), b.1.len(), "{}: feature lengths differ", what);
    assert!(
        a.1.iter()
            .zip(&b.1)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "{}: feature bytes differ",
        what
    );
}

#[test]
fn two_generation_runs_write_bit_identical_cevt_bytes() {
    let recipe = load_recipe(&repo_recipe("adv_reorder.json"))
        .expect("committed recipe parses")
        .scaled(0.05);
    let a = scratch("run_a.cevt");
    let b = scratch("run_b.cevt");
    generate_to_store(&recipe, &a).expect("first generation");
    generate_to_store(&recipe, &b).expect("second generation");
    let bytes_a = std::fs::read(&a).expect("first store readable");
    let bytes_b = std::fs::read(&b).expect("second store readable");
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "same (recipe, seed) must give same bytes");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn store_replay_matches_on_the_fly_regeneration() {
    let recipe = load_recipe(&repo_recipe("adv_flash_crowd.json"))
        .expect("committed recipe parses")
        .scaled(0.05);
    let path = scratch("replay.cevt");
    generate_to_store(&recipe, &path).expect("generation");

    let mut from_store = StreamingEventSource::open(&path, 2).expect("store opens");
    let mut on_the_fly = ScenarioSource::new(recipe.clone()).expect("generator builds");
    assert_eq!(from_store.num_events(), on_the_fly.num_events());
    assert_eq!(from_store.feature_dim(), on_the_fly.feature_dim());
    assert_streams_equal(
        drain(&mut from_store),
        drain(&mut on_the_fly),
        "store vs regeneration",
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn follower_mode_partitioning_matches_the_partitioned_store() {
    // A dist follower regenerates its shard on the fly; the leader may
    // read the same shard out of a generated store. Both sides must see
    // identical chunk sets.
    let recipe = load_recipe(&repo_recipe("adv_churn.json"))
        .expect("committed recipe parses")
        .scaled(0.05);
    let path = scratch("partitioned.cevt");
    generate_to_store(&recipe, &path).expect("generation");

    for worker in 0..2 {
        let store = StreamingEventSource::open(&path, 2).expect("store opens");
        let mut from_store = PartitionedSource::new(store, worker, 2);
        let gen = ScenarioSource::new(recipe.clone()).expect("generator builds");
        let mut on_the_fly = PartitionedSource::new(gen, worker, 2);
        assert_streams_equal(
            drain(&mut from_store),
            drain(&mut on_the_fly),
            &format!("worker {} shard", worker),
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn committed_gdelt_recipe_projects_past_a_gigabyte_and_sizes_track_projection() {
    let recipe = load_recipe(&repo_recipe("gdelt_full.json")).expect("committed recipe parses");
    let event_len = 16 + recipe.feature_dim * 4;
    let projected = recipe.delivered_events() * event_len;
    assert!(
        projected >= 1_000_000_000,
        "gdelt_full must project >= 1 GB of CEVT payload, got {} bytes",
        projected
    );

    // The projection model is validated on a scaled-down cut of the
    // same recipe: payload bytes dominate, frame headers add < 1%.
    let scaled = recipe.scaled(0.004);
    let path = scratch("gdelt_cut.cevt");
    generate_to_store(&scaled, &path).expect("generation");
    let actual = std::fs::metadata(&path).expect("store exists").len() as usize;
    let scaled_projection = scaled.delivered_events() * event_len;
    assert!(
        actual >= scaled_projection,
        "store file ({} B) must hold at least the projected payload ({} B)",
        actual,
        scaled_projection
    );
    assert!(
        actual <= scaled_projection + scaled_projection / 50 + 4096,
        "frame overhead must stay under 2%: {} vs projected {}",
        actual,
        scaled_projection
    );
    std::fs::remove_file(&path).ok();
}
