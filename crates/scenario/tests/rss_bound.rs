//! Generation-memory acceptance: the generator streams straight to
//! CEVT chunks and must never materialize the dataset in RAM. `VmHWM`
//! is process-global and monotone, so the bound is on *growth*: after a
//! small generation has paid all one-time allocations (partner table,
//! chunk buffer, writer state), a 10x-larger generation must not move
//! the high-water mark by more than a slack far below the big dataset's
//! size. Everything runs in one `#[test]` so no other test in the
//! process can raise the mark between samples.

use cascade_scenario::{generate_to_store, peak_rss_bytes, Recipe};

fn recipe(events_scale: f64) -> Recipe {
    let text = r#"{
        "name": "rss_probe",
        "seed": 5,
        "nodes": 20000,
        "feature_dim": 64,
        "chunk_size": 4096,
        "phases": [
            { "name": "warm", "kind": "baseline", "events": 30000 },
            { "name": "storm", "kind": "reorder", "events": 20000,
              "window": 256, "duplicate_every": 50 }
        ]
    }"#;
    Recipe::parse(text)
        .expect("probe recipe parses")
        .scaled(events_scale)
}

#[test]
fn generation_rss_growth_is_independent_of_dataset_size() {
    let Some(_) = peak_rss_bytes() else {
        eprintln!("VmHWM unavailable; skipping RSS bound check");
        return;
    };
    let dir = std::env::temp_dir().join("cascade_scenario_rss");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let small_path = dir.join(format!("{}_small.cevt", std::process::id()));
    let big_path = dir.join(format!("{}_big.cevt", std::process::id()));

    // Small run first: pays the partner table, chunk buffer, and writer
    // allocations, so the baseline mark includes every fixed cost.
    let small = recipe(0.1);
    generate_to_store(&small, &small_path).expect("small generation");
    let after_small = peak_rss_bytes().expect("VmHWM readable");

    let big = recipe(1.0);
    generate_to_store(&big, &big_path).expect("big generation");
    let after_big = peak_rss_bytes().expect("VmHWM readable");

    let big_bytes = std::fs::metadata(&big_path)
        .expect("big store exists")
        .len();
    let small_bytes = std::fs::metadata(&small_path)
        .expect("small store exists")
        .len();
    assert!(
        big_bytes > small_bytes * 5,
        "big run must actually be much larger on disk: {} vs {}",
        big_bytes,
        small_bytes
    );

    let growth = after_big.saturating_sub(after_small);
    assert!(
        growth < 64 * 1024 * 1024,
        "peak RSS grew {} bytes across a {}-byte generation; \
         the generator must stream, not materialize",
        growth,
        big_bytes
    );
    std::fs::remove_file(&small_path).ok();
    std::fs::remove_file(&big_path).ok();
}
