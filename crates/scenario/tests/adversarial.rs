//! Adversarial-recipe acceptance: every committed perturbation recipe
//! must run end to end (scaled down for CI wall-clock), and the reorder
//! recipe's training trajectory must be bit-identical to its presorted
//! control — proving `BufferedReorder` fully undoes scrambled,
//! duplicated delivery before a single gradient is taken.

use std::path::PathBuf;

use cascade_scenario::{load_recipe, ScenarioRunner};

fn repo_recipe(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../recipes")
        .join(name)
}

#[test]
fn all_four_adversarial_recipes_train_without_panics() {
    for name in [
        "adv_flash_crowd.json",
        "adv_churn.json",
        "adv_skew_shift.json",
        "adv_reorder.json",
    ] {
        let recipe = load_recipe(&repo_recipe(name))
            .expect("committed recipe parses")
            .scaled(0.02);
        let report = ScenarioRunner::new(recipe)
            .train(None, false)
            .unwrap_or_else(|e| panic!("{} failed: {}", name, e));
        assert_eq!(report.epochs, 1, "{}: one epoch trained", name);
        assert!(
            report.final_train_loss.is_finite() && report.final_train_loss > 0.0,
            "{}: loss must be finite and positive, got {}",
            name,
            report.final_train_loss
        );
        assert_eq!(
            report.phases.len(),
            3,
            "{}: per-phase losses cover the recipe",
            name
        );
        assert!(
            report.phases.iter().any(|p| p.batches > 0),
            "{}: at least one phase must receive training batches",
            name
        );
    }
}

#[test]
fn reorder_training_is_bit_identical_to_the_presorted_control() {
    let scrambled = load_recipe(&repo_recipe("adv_reorder.json"))
        .expect("committed recipe parses")
        .scaled(0.05);
    let control = scrambled.presorted_control();
    assert!(scrambled.delivered_events() > scrambled.base_events());
    assert_eq!(control.delivered_events(), control.base_events());

    let scrambled_report = ScenarioRunner::new(scrambled)
        .train(None, false)
        .expect("scrambled run trains");
    let control_report = ScenarioRunner::new(control)
        .train(None, false)
        .expect("control run trains");

    assert_eq!(
        scrambled_report.epoch_losses.len(),
        control_report.epoch_losses.len()
    );
    for (i, (a, b)) in scrambled_report
        .epoch_losses
        .iter()
        .zip(&control_report.epoch_losses)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "epoch {} loss diverged: {} vs {}",
            i,
            a,
            b
        );
    }
    assert_eq!(
        scrambled_report.final_train_loss.to_bits(),
        control_report.final_train_loss.to_bits(),
        "final loss must be bit-identical: {} vs {}",
        scrambled_report.final_train_loss,
        control_report.final_train_loss
    );
    assert_eq!(
        scrambled_report.val_loss.to_bits(),
        control_report.val_loss.to_bits(),
        "val loss must be bit-identical"
    );
}
