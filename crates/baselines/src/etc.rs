//! ETC-style information-loss-bounded batching (§5.6).
//!
//! ETC grows each batch as long as the batch's *information loss* — the
//! total number of expected node updates beyond the first per node, i.e.
//! events that would consume stale memory — stays under a threshold
//! auto-detected from the preset small batch size. One global budget
//! means a few hot nodes can exhaust it for the whole batch, which is the
//! limitation Cascade's per-node endurance avoids (§5.6).

use std::time::Instant;

use cascade_core::{BatchingStrategy, StrategyTimers};
use cascade_tgraph::{Event, EventId};

/// The ETC batching scheme.
///
/// # Examples
///
/// ```
/// use cascade_baselines::Etc;
/// use cascade_core::BatchingStrategy;
/// use cascade_tgraph::Event;
///
/// let events: Vec<Event> = (0..100)
///     .map(|i| Event::new((i % 7) as u32, (7 + i % 5) as u32, i as f64))
///     .collect();
/// let mut s = Etc::new(10);
/// s.prepare(&events, 12);
/// let end = s.next_batch_end(0, 100);
/// assert!(end >= 10);
/// ```
#[derive(Clone, Debug)]
pub struct Etc {
    preset_batch: usize,
    threshold: usize,
    events: Vec<Event>,
    num_nodes: usize,
    counts: Vec<u32>,
    touched: Vec<u32>,
    timers: StrategyTimers,
}

impl Etc {
    /// Creates the strategy with the preset (profiling) batch size.
    ///
    /// # Panics
    ///
    /// Panics if `preset_batch == 0`.
    pub fn new(preset_batch: usize) -> Self {
        assert!(preset_batch > 0, "preset batch must be positive");
        Etc {
            preset_batch,
            threshold: 0,
            events: Vec::new(),
            num_nodes: 0,
            counts: Vec::new(),
            touched: Vec::new(),
            timers: StrategyTimers::default(),
        }
    }

    /// The detected information-loss threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Information loss of `events`: per node, every appearance after the
    /// first uses stale memory.
    fn information_loss(events: &[Event], counts: &mut [u32], touched: &mut Vec<u32>) -> usize {
        let mut loss = 0usize;
        for e in events {
            for n in [e.src.index(), e.dst.index()] {
                if counts[n] > 0 {
                    loss += 1;
                } else {
                    touched.push(n as u32);
                }
                counts[n] += 1;
            }
        }
        for &n in touched.iter() {
            counts[n as usize] = 0;
        }
        touched.clear();
        loss
    }
}

impl BatchingStrategy for Etc {
    fn name(&self) -> String {
        "ETC".to_string()
    }

    fn prepare(&mut self, events: &[Event], num_nodes: usize) {
        let t0 = Instant::now();
        self.events = events.to_vec();
        self.num_nodes = num_nodes;
        self.counts = vec![0; num_nodes];
        self.touched = Vec::new();

        // Auto-detect the loss bound: the largest information loss any
        // preset-size batch incurs (the "upper bound of the detected
        // information loss", §5.6).
        let mut threshold = 0usize;
        for chunk in events.chunks(self.preset_batch) {
            threshold = threshold.max(Self::information_loss(
                chunk,
                &mut self.counts,
                &mut self.touched,
            ));
        }
        self.threshold = threshold.max(1);
        self.timers.build_table += t0.elapsed();
    }

    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId {
        assert!(start < limit, "next_batch_end on empty range");
        let t0 = Instant::now();
        let mut loss = 0usize;
        let mut end = start;
        while end < limit {
            let e = &self.events[end];
            let mut added = 0usize;
            for n in [e.src.index(), e.dst.index()] {
                if self.counts[n] > 0 {
                    added += 1;
                } else {
                    self.touched.push(n as u32);
                }
                self.counts[n] += 1;
            }
            if loss + added > self.threshold && end > start {
                // Undo the tentative admission.
                for n in [e.src.index(), e.dst.index()] {
                    self.counts[n] -= 1;
                }
                break;
            }
            loss += added;
            end += 1;
        }
        for &n in self.touched.iter() {
            self.counts[n as usize] = 0;
        }
        self.touched.clear();
        self.timers.lookup += t0.elapsed();
        end.max(start + 1)
    }

    fn timers(&self) -> StrategyTimers {
        self.timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u32, d: u32, t: f64) -> Event {
        Event::new(s, d, t)
    }

    #[test]
    fn loss_counts_repeat_touches() {
        let events = vec![ev(0, 1, 0.0), ev(0, 2, 1.0), ev(0, 1, 2.0)];
        let mut counts = vec![0u32; 3];
        let mut touched = Vec::new();
        // Node 0 appears 3x (loss 2), node 1 appears 2x (loss 1).
        assert_eq!(Etc::information_loss(&events, &mut counts, &mut touched), 3);
        assert!(counts.iter().all(|&c| c == 0), "scratch must be reset");
    }

    #[test]
    fn disjoint_events_have_zero_loss() {
        let events = vec![ev(0, 1, 0.0), ev(2, 3, 1.0)];
        let mut counts = vec![0u32; 4];
        let mut touched = Vec::new();
        assert_eq!(Etc::information_loss(&events, &mut counts, &mut touched), 0);
    }

    #[test]
    fn scattered_events_extend_far() {
        // Fully node-disjoint events never add loss: the batch runs to
        // the limit.
        let events: Vec<Event> = (0..50).map(|i| ev(2 * i, 2 * i + 1, i as f64)).collect();
        let mut s = Etc::new(5);
        s.prepare(&events, 100);
        assert_eq!(s.next_batch_end(0, 50), 50);
    }

    #[test]
    fn hot_node_caps_batch() {
        // Every event touches node 0: loss grows one per event after the
        // first; threshold from preset 5 is 2·5−... measured on chunks.
        let events: Vec<Event> = (0..50).map(|i| ev(0, 1, i as f64)).collect();
        let mut s = Etc::new(5);
        s.prepare(&events, 2);
        let end = s.next_batch_end(0, 50);
        // Threshold = loss of a 5-event all-hot chunk = 2*5-2 = 8;
        // a batch of k events costs 2k-2: 2k-2 <= 8 -> k <= 5.
        assert_eq!(end, 5);
    }

    #[test]
    fn partitions_stream() {
        let events: Vec<Event> = (0..40).map(|i| ev(i % 3, 3 + (i % 4), i as f64)).collect();
        let mut s = Etc::new(4);
        s.prepare(&events, 7);
        let mut start = 0;
        while start < 40 {
            let end = s.next_batch_end(start, 40);
            assert!(end > start && end <= 40);
            start = end;
        }
    }

    #[test]
    fn threshold_detected_positive() {
        let events: Vec<Event> = (0..20).map(|i| ev(0, 1 + i % 2, i as f64)).collect();
        let mut s = Etc::new(4);
        s.prepare(&events, 3);
        assert!(s.threshold() >= 1);
    }
}
