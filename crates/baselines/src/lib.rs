#![warn(missing_docs)]
//! # cascade-baselines
//!
//! The batching baselines the Cascade paper compares against (§5.1, §5.6):
//!
//! * **TGL** — fixed-size batching (re-exported from `cascade-core`'s
//!   [`FixedBatching`]); [`tgl`] builds the canonically labeled instance.
//! * **TGLite** — fixed-size batching paired with the redundancy-
//!   eliminating model execution mode
//!   ([`ModelConfig::with_lite`](cascade_models::ModelConfig::with_lite));
//!   [`tglite`] builds the labeled strategy.
//! * [`NeutronStream`] — dependency-graph batching that only admits
//!   events independent of the current batch.
//! * [`Etc`] — information-loss-bounded batch growth with an auto-
//!   detected global threshold.
//!
//! # Examples
//!
//! ```
//! use cascade_baselines::{tgl, Etc, NeutronStream};
//! use cascade_core::BatchingStrategy;
//!
//! assert_eq!(tgl(900).name(), "TGL");
//! assert_eq!(NeutronStream::new(900).name(), "NeutronStream");
//! assert_eq!(Etc::new(900).name(), "ETC");
//! ```

mod etc;
mod neutron;

pub use etc::Etc;
pub use neutron::NeutronStream;

pub use cascade_core::FixedBatching;

/// The TGL baseline: fixed-size batching at `batch_size`.
pub fn tgl(batch_size: usize) -> FixedBatching {
    FixedBatching::new(batch_size).with_label("TGL")
}

/// The TGL-LB comparison point (Figure 12(b)): fixed batching at the
/// enlarged batch size Cascade achieved.
pub fn tgl_lb(batch_size: usize) -> FixedBatching {
    FixedBatching::new(batch_size).with_label("TGL-LB")
}

/// The TGLite baseline's batching half; pair it with a model built from
/// [`ModelConfig::with_lite`](cascade_models::ModelConfig::with_lite).
pub fn tglite(batch_size: usize) -> FixedBatching {
    FixedBatching::new(batch_size).with_label("TGLite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_core::BatchingStrategy;

    #[test]
    fn labels() {
        assert_eq!(tgl(10).name(), "TGL");
        assert_eq!(tgl_lb(10).name(), "TGL-LB");
        assert_eq!(tglite(10).name(), "TGLite");
    }

    #[test]
    fn tgl_batch_size_is_exact() {
        let mut s = tgl(10);
        assert_eq!(s.next_batch_end(0, 100), 10);
    }
}
