//! NeutronStream-style dependency-graph batching (§5.6).
//!
//! NeutronStream builds a dependency graph over the input events and only
//! parallelizes events with no dependence: starting from the base batch,
//! the batch is extended with subsequent events only while they are
//! independent of (share no endpoint with) every event already admitted.
//! The first dependent event closes the batch.

use std::collections::HashSet;
use std::time::Instant;

use cascade_core::{BatchingStrategy, StrategySpace, StrategyTimers};
use cascade_tgraph::{Event, EventId};

/// The NeutronStream batching scheme.
///
/// # Examples
///
/// ```
/// use cascade_baselines::NeutronStream;
/// use cascade_core::BatchingStrategy;
/// use cascade_tgraph::Event;
///
/// let events = vec![
///     Event::new(0u32, 1u32, 0.0),
///     Event::new(2u32, 3u32, 1.0), // independent of the base batch
///     Event::new(0u32, 4u32, 2.0), // depends on node 0 -> closes batch
/// ];
/// let mut s = NeutronStream::new(1);
/// s.prepare(&events, 5);
/// assert_eq!(s.next_batch_end(0, 3), 2);
/// ```
#[derive(Clone, Debug)]
pub struct NeutronStream {
    base_batch: usize,
    /// For each event, the id of the closest earlier event sharing a node
    /// (the dependency edge NeutronStream materializes).
    dependency_edges: Vec<Option<EventId>>,
    events: Vec<Event>,
    timers: StrategyTimers,
}

impl NeutronStream {
    /// Creates the strategy with the given base batch size.
    ///
    /// # Panics
    ///
    /// Panics if `base_batch == 0`.
    pub fn new(base_batch: usize) -> Self {
        assert!(base_batch > 0, "base batch must be positive");
        NeutronStream {
            base_batch,
            dependency_edges: Vec::new(),
            events: Vec::new(),
            timers: StrategyTimers::default(),
        }
    }

    /// The materialized per-event dependency edges (`None` for events
    /// with no earlier neighbor-sharing event).
    pub fn dependency_edges(&self) -> &[Option<EventId>] {
        &self.dependency_edges
    }
}

impl BatchingStrategy for NeutronStream {
    fn name(&self) -> String {
        "NeutronStream".to_string()
    }

    fn prepare(&mut self, events: &[Event], num_nodes: usize) {
        // Dependency-graph construction: the preprocessing cost §5.6
        // observes ("they spend a lot of time constructing dependency
        // graphs").
        let t0 = Instant::now();
        let mut last_touch: Vec<Option<EventId>> = vec![None; num_nodes];
        self.dependency_edges = events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let dep = match (last_touch[e.src.index()], last_touch[e.dst.index()]) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                };
                last_touch[e.src.index()] = Some(i);
                last_touch[e.dst.index()] = Some(i);
                dep
            })
            .collect();
        self.events = events.to_vec();
        self.timers.build_table += t0.elapsed();
    }

    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId {
        assert!(start < limit, "next_batch_end on empty range");
        let t0 = Instant::now();
        let mut end = (start + self.base_batch).min(limit);

        // Collect the base batch's node set, then admit subsequent events
        // while they are independent of everything already batched.
        let mut touched: HashSet<u32> = HashSet::new();
        for e in &self.events[start..end] {
            touched.insert(e.src.0);
            touched.insert(e.dst.0);
        }
        while end < limit {
            let e = &self.events[end];
            if touched.contains(&e.src.0) || touched.contains(&e.dst.0) {
                break;
            }
            touched.insert(e.src.0);
            touched.insert(e.dst.0);
            end += 1;
        }
        self.timers.lookup += t0.elapsed();
        end
    }

    fn space(&self) -> StrategySpace {
        StrategySpace {
            dependency_bytes: self.dependency_edges.len() * std::mem::size_of::<Option<EventId>>(),
            flag_bytes: 0,
        }
    }

    fn timers(&self) -> StrategyTimers {
        self.timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u32, d: u32, t: f64) -> Event {
        Event::new(s, d, t)
    }

    #[test]
    fn dependency_edges_point_backwards() {
        let events = vec![ev(0, 1, 0.0), ev(2, 3, 1.0), ev(1, 2, 2.0)];
        let mut n = NeutronStream::new(1);
        n.prepare(&events, 4);
        assert_eq!(n.dependency_edges(), &[None, None, Some(1)]);
    }

    #[test]
    fn extends_over_independent_suffix() {
        let events = vec![
            ev(0, 1, 0.0),
            ev(2, 3, 1.0),
            ev(4, 5, 2.0),
            ev(0, 2, 3.0), // shares node 0 with the base batch
        ];
        let mut n = NeutronStream::new(1);
        n.prepare(&events, 6);
        assert_eq!(n.next_batch_end(0, 4), 3);
    }

    #[test]
    fn stops_immediately_on_dependence() {
        let events = vec![ev(0, 1, 0.0), ev(1, 2, 1.0), ev(3, 4, 2.0)];
        let mut n = NeutronStream::new(1);
        n.prepare(&events, 5);
        // Event 1 shares node 1 with the base batch: no extension.
        assert_eq!(n.next_batch_end(0, 3), 1);
    }

    #[test]
    fn base_batch_is_floor() {
        let events: Vec<Event> = (0..10).map(|i| ev(0, 1, i as f64)).collect();
        let mut n = NeutronStream::new(4);
        n.prepare(&events, 2);
        // All events hit the same nodes, so no extension past the base.
        assert_eq!(n.next_batch_end(0, 10), 4);
    }

    #[test]
    fn partitions_stream() {
        let events: Vec<Event> = (0..20).map(|i| ev(i % 4, 4 + (i % 3), i as f64)).collect();
        let mut n = NeutronStream::new(3);
        n.prepare(&events, 8);
        let mut start = 0;
        while start < 20 {
            let end = n.next_batch_end(start, 20);
            assert!(end > start && end <= 20);
            start = end;
        }
    }

    #[test]
    fn space_reflects_dependency_graph() {
        let events = vec![ev(0, 1, 0.0)];
        let mut n = NeutronStream::new(1);
        n.prepare(&events, 2);
        assert!(n.space().dependency_bytes > 0);
    }
}
