//! Fault injection: corrupt store files must surface the right typed
//! [`StoreError`] with the offending chunk index — and never panic.

use std::path::{Path, PathBuf};

use cascade_store::{
    export_dataset, import_dataset, ChunkReader, StoreError, StreamingEventSource, MAGIC,
};
use cascade_tgraph::{EventSource, SynthConfig};

const CHUNK: usize = 128;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cascade_store_fault");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir.join(format!("{}_{}.evt", tag, std::process::id()))
}

fn write_sample(tag: &str) -> (PathBuf, usize) {
    let data = SynthConfig::wiki().with_scale(0.004).generate(13);
    let path = scratch(tag);
    let summary = export_dataset(&data, &path, CHUNK).expect("export succeeds");
    assert!(summary.chunks >= 4, "sample must span several chunks");
    (path, summary.chunks)
}

/// Byte offset where chunk frame `k` starts (header + k full frames).
fn frame_offset(path: &Path, k: usize) -> usize {
    let mut reader = ChunkReader::open(path).expect("file is valid before injection");
    let meta = reader.meta();
    let frame_len = 48 + meta.expected_payload_len(meta.chunk_size) + 4;
    let mut off = 32;
    for _ in 0..k {
        let chunk = reader
            .next_frame()
            .expect("frames before target are intact")
            .expect("target frame exists");
        assert_eq!(
            meta.expected_payload_len(chunk.events.len()) + 52,
            frame_len
        );
        off += frame_len;
    }
    off
}

#[test]
fn roundtrip_is_lossless() {
    let data = SynthConfig::wiki().with_scale(0.004).generate(13);
    let path = scratch("roundtrip");
    export_dataset(&data, &path, CHUNK).expect("export succeeds");
    let back = import_dataset(&path, "back").expect("import succeeds");
    assert_eq!(back.num_events(), data.num_events());
    assert_eq!(back.stream().events(), data.stream().events());
    for i in [0, data.num_events() / 2, data.num_events() - 1] {
        assert_eq!(back.features().row(i), data.features().row(i));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flip_in_payload_is_a_crc_mismatch() {
    let (path, _) = write_sample("bitflip");
    let target_chunk = 2;
    let off = frame_offset(&path, target_chunk) + 48 + 5; // inside payload
    let mut bytes = std::fs::read(&path).expect("file readable");
    bytes[off] ^= 0x10;
    std::fs::write(&path, &bytes).expect("file writable");

    let mut reader = ChunkReader::open(&path).expect("header still valid");
    let mut yielded = 0;
    let err = loop {
        match reader.next_frame() {
            Ok(Some(_)) => yielded += 1,
            Ok(None) => panic!("corruption must be detected"),
            Err(e) => break e,
        }
    };
    // Every chunk before the bad one still streams intact.
    assert_eq!(yielded, target_chunk);
    match err {
        StoreError::CrcMismatch {
            chunk,
            stored,
            computed,
        } => {
            assert_eq!(chunk, target_chunk);
            assert_ne!(stored, computed);
        }
        other => panic!("expected CrcMismatch, got {}", other),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_is_a_truncated_frame() {
    let (path, chunks) = write_sample("trunc");
    let bytes = std::fs::read(&path).expect("file readable");
    // Cut into the middle of the last frame's payload.
    let cut = frame_offset(&path, chunks - 1) + 60;
    std::fs::write(&path, &bytes[..cut]).expect("file writable");

    let mut reader = ChunkReader::open(&path).expect("header still valid");
    let mut yielded = 0;
    let err = loop {
        match reader.next_frame() {
            Ok(Some(_)) => yielded += 1,
            Ok(None) => panic!("truncation must be detected"),
            Err(e) => break e,
        }
    };
    assert_eq!(yielded, chunks - 1);
    assert!(
        matches!(err, StoreError::TruncatedFrame { chunk } if chunk == chunks - 1),
        "expected TruncatedFrame at {}, got {}",
        chunks - 1,
        err
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_tail_frames_are_a_truncated_frame() {
    // Cut exactly at a frame boundary: a clean EOF, but short of the
    // header's declared event count.
    let (path, chunks) = write_sample("shortfall");
    let bytes = std::fs::read(&path).expect("file readable");
    let cut = frame_offset(&path, chunks - 2);
    std::fs::write(&path, &bytes[..cut]).expect("file writable");

    let mut reader = ChunkReader::open(&path).expect("header still valid");
    let mut yielded = 0;
    let err = loop {
        match reader.next_frame() {
            Ok(Some(_)) => yielded += 1,
            Ok(None) => panic!("shortfall must be detected"),
            Err(e) => break e,
        }
    };
    assert_eq!(yielded, chunks - 2);
    assert!(matches!(err, StoreError::TruncatedFrame { chunk } if chunk == chunks - 2));
    std::fs::remove_file(&path).ok();
}

#[test]
fn version_skew_is_typed() {
    let (path, _) = write_sample("version");
    let mut bytes = std::fs::read(&path).expect("file readable");
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    std::fs::write(&path, &bytes).expect("file writable");
    assert!(matches!(
        ChunkReader::open(&path),
        Err(StoreError::VersionSkew {
            found: 7,
            supported: 1
        })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_is_typed() {
    let path = scratch("magic");
    std::fs::write(&path, b"PNG\x0d and then some trailing bytes").expect("file writable");
    match ChunkReader::open(&path) {
        Err(StoreError::BadMagic { found }) => assert_ne!(found, MAGIC),
        other => panic!("expected BadMagic, got {:?}", other.map(|_| ())),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tiny_file_is_truncated_not_a_panic() {
    let path = scratch("tiny");
    std::fs::write(&path, &MAGIC[..3]).expect("file writable");
    assert!(matches!(
        ChunkReader::open(&path),
        Err(StoreError::TruncatedFrame { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_frame_header_is_reported_not_trusted() {
    // Blow up payload_len in frame 1's header: the reader must flag the
    // inconsistency instead of allocating a bogus buffer. (The CRC would
    // also catch this, but the sanity check fires first by design.)
    let (path, _) = write_sample("badlen");
    let off = frame_offset(&path, 1);
    let mut bytes = std::fs::read(&path).expect("file readable");
    bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("file writable");

    let mut reader = ChunkReader::open(&path).expect("header still valid");
    assert!(reader.next_frame().expect("frame 0 intact").is_some());
    assert!(matches!(
        reader.next_frame(),
        Err(StoreError::Corrupt { chunk: 1, .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_source_surfaces_corruption_with_chunk_index() {
    let (path, _) = write_sample("stream_corrupt");
    let target_chunk = 3;
    let off = frame_offset(&path, target_chunk) + 48 + 9;
    let mut bytes = std::fs::read(&path).expect("file readable");
    bytes[off] ^= 0x01;
    std::fs::write(&path, &bytes).expect("file writable");

    let mut src = StreamingEventSource::open(&path, 2).expect("header still valid");
    let mut yielded = 0;
    let err = loop {
        match src.next_chunk() {
            Ok(Some(_)) => yielded += 1,
            Ok(None) => panic!("corruption must surface through the source"),
            Err(e) => break e,
        }
    };
    // The partially corrupt file still streams every chunk before the
    // bad one.
    assert_eq!(yielded, target_chunk);
    assert_eq!(err.chunk, Some(target_chunk));
    assert!(err.message.contains("crc mismatch"));
    // After the error the source is terminated, not wedged.
    assert!(src
        .next_chunk()
        .expect("post-error source is inert")
        .is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_source_matches_in_memory_source() {
    let data = SynthConfig::wiki().with_scale(0.004).generate(13);
    let path = scratch("identical");
    export_dataset(&data, &path, CHUNK).expect("export succeeds");

    let mut mem = cascade_tgraph::InMemorySource::from_dataset(&data, CHUNK);
    let mut disk = StreamingEventSource::open(&path, 2).expect("open succeeds");
    assert_eq!(mem.num_events(), disk.num_events());
    assert_eq!(mem.num_nodes(), disk.num_nodes());
    assert_eq!(mem.feature_dim(), disk.feature_dim());
    for round in 0..2 {
        loop {
            let a = mem.next_chunk().expect("in-memory source never fails");
            let b = disk.next_chunk().expect("file is intact");
            assert_eq!(a, b, "divergence in round {}", round);
            if a.is_none() {
                break;
            }
        }
        mem.reset().expect("reset never fails");
        disk.reset().expect("reset reopens the file");
    }
    std::fs::remove_file(&path).ok();
}
