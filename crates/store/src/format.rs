//! The `CEVT` on-disk format: byte layout of the file header and the
//! per-chunk frame headers, plus little-endian codec helpers.
//!
//! ```text
//! file   := header frame*
//! header := magic[4] version:u16 feature_dim:u16
//!           num_nodes:u64 num_events:u64 chunk_size:u64        (32 bytes)
//! frame  := payload_len:u64 event_count:u64 base:u64
//!           t_min:f64 t_max:f64 touched_nodes:u64              (48 bytes)
//!           payload[payload_len] crc:u32
//! payload:= (src:u32 dst:u32 time:f64){count} (feature:f32){count*dim}
//! ```
//!
//! All integers and floats are little-endian. `num_events` (byte offset
//! 16) is rewritten by the writer on finish, so a crash mid-write leaves
//! a header whose declared count exceeds the frames present — which the
//! reader reports as a truncated frame. The trailing CRC32 covers the
//! frame header *and* the payload, so a bit flip anywhere in a chunk is
//! detected.

use crate::error::StoreError;

/// File magic: "Cascade EVenT".
pub const MAGIC: [u8; 4] = *b"CEVT";

/// Current format version.
pub const VERSION: u16 = 1;

/// Size of the fixed file header in bytes.
pub const HEADER_LEN: usize = 32;

/// Byte offset of the `num_events` field inside the header.
pub const NUM_EVENTS_OFFSET: u64 = 16;

/// Size of a frame header in bytes (excludes payload and CRC).
pub const FRAME_HEADER_LEN: usize = 48;

/// Bytes one event occupies in a frame payload (`src u32 + dst u32 +
/// time f64`).
pub const EVENT_LEN: usize = 16;

/// Decoded file header: the stream's global shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Edge-feature width (0 = no features).
    pub feature_dim: usize,
    /// Number of nodes the stream covers.
    pub num_nodes: usize,
    /// Total events across all frames.
    pub num_events: usize,
    /// Nominal events per chunk (every frame but the last holds exactly
    /// this many).
    pub chunk_size: usize,
}

impl StoreMeta {
    /// Encodes the 32-byte header.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..8].copy_from_slice(&(self.feature_dim as u16).to_le_bytes());
        buf[8..16].copy_from_slice(&(self.num_nodes as u64).to_le_bytes());
        buf[16..24].copy_from_slice(&(self.num_events as u64).to_le_bytes());
        buf[24..32].copy_from_slice(&(self.chunk_size as u64).to_le_bytes());
        buf
    }

    /// Decodes and validates a 32-byte header.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`] when the magic is wrong,
    /// [`StoreError::VersionSkew`] on an unsupported version, and
    /// [`StoreError::Corrupt`] on implausible shape fields.
    pub fn decode(buf: &[u8; HEADER_LEN]) -> Result<Self, StoreError> {
        let mut found = [0u8; 4];
        found.copy_from_slice(&buf[0..4]);
        if found != MAGIC {
            return Err(StoreError::BadMagic { found });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(StoreError::VersionSkew {
                found: version,
                supported: VERSION,
            });
        }
        let meta = StoreMeta {
            feature_dim: u16::from_le_bytes([buf[6], buf[7]]) as usize,
            num_nodes: read_u64(&buf[8..16]) as usize,
            num_events: read_u64(&buf[16..24]) as usize,
            chunk_size: read_u64(&buf[24..32]) as usize,
        };
        if meta.chunk_size == 0 {
            return Err(StoreError::Corrupt {
                chunk: 0,
                message: "header declares chunk size 0".to_string(),
            });
        }
        Ok(meta)
    }

    /// Number of chunk frames the file should contain.
    pub fn num_chunks(&self) -> usize {
        self.num_events.div_ceil(self.chunk_size)
    }

    /// Payload length a frame of `count` events must have.
    pub fn expected_payload_len(&self, count: usize) -> usize {
        count * EVENT_LEN + count * self.feature_dim * 4
    }
}

/// Decoded frame header: shape and summary of one chunk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameHeader {
    /// Payload bytes following this header.
    pub payload_len: usize,
    /// Events in the chunk.
    pub event_count: usize,
    /// Global stream id of the chunk's first event.
    pub base: usize,
    /// Smallest event timestamp in the chunk.
    pub t_min: f64,
    /// Largest event timestamp in the chunk.
    pub t_max: f64,
    /// Distinct nodes the chunk's events touch (summary, not needed for
    /// decode — lets schedulers size structures without reading the
    /// payload).
    pub touched_nodes: usize,
}

impl FrameHeader {
    /// Encodes the 48-byte frame header.
    pub fn encode(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut buf = [0u8; FRAME_HEADER_LEN];
        buf[0..8].copy_from_slice(&(self.payload_len as u64).to_le_bytes());
        buf[8..16].copy_from_slice(&(self.event_count as u64).to_le_bytes());
        buf[16..24].copy_from_slice(&(self.base as u64).to_le_bytes());
        buf[24..32].copy_from_slice(&self.t_min.to_le_bytes());
        buf[32..40].copy_from_slice(&self.t_max.to_le_bytes());
        buf[40..48].copy_from_slice(&(self.touched_nodes as u64).to_le_bytes());
        buf
    }

    /// Decodes a 48-byte frame header (no validation — the caller checks
    /// consistency against the file header).
    pub fn decode(buf: &[u8; FRAME_HEADER_LEN]) -> Self {
        FrameHeader {
            payload_len: read_u64(&buf[0..8]) as usize,
            event_count: read_u64(&buf[8..16]) as usize,
            base: read_u64(&buf[16..24]) as usize,
            t_min: f64::from_le_bytes(buf[24..32].try_into().expect("slice is 8 bytes")),
            t_max: f64::from_le_bytes(buf[32..40].try_into().expect("slice is 8 bytes")),
            touched_nodes: read_u64(&buf[40..48]) as usize,
        }
    }
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("slice is 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let meta = StoreMeta {
            feature_dim: 8,
            num_nodes: 9227,
            num_events: 157_474,
            chunk_size: 4096,
        };
        let buf = meta.encode();
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(StoreMeta::decode(&buf).expect("valid header"), meta);
        assert_eq!(meta.num_chunks(), 157_474usize.div_ceil(4096));
    }

    #[test]
    fn num_events_sits_at_documented_offset() {
        let meta = StoreMeta {
            feature_dim: 0,
            num_nodes: 3,
            num_events: 0x0102_0304,
            chunk_size: 16,
        };
        let buf = meta.encode();
        let off = NUM_EVENTS_OFFSET as usize;
        assert_eq!(
            u64::from_le_bytes(buf[off..off + 8].try_into().expect("slice is 8 bytes")),
            0x0102_0304
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let meta = StoreMeta {
            feature_dim: 0,
            num_nodes: 1,
            num_events: 1,
            chunk_size: 1,
        };
        let mut buf = meta.encode();
        buf[0] = b'X';
        assert!(matches!(
            StoreMeta::decode(&buf),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_future_version() {
        let meta = StoreMeta {
            feature_dim: 0,
            num_nodes: 1,
            num_events: 1,
            chunk_size: 1,
        };
        let mut buf = meta.encode();
        buf[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            StoreMeta::decode(&buf),
            Err(StoreError::VersionSkew {
                found: 2,
                supported: 1
            })
        ));
    }

    #[test]
    fn rejects_zero_chunk_size() {
        let meta = StoreMeta {
            feature_dim: 0,
            num_nodes: 1,
            num_events: 1,
            chunk_size: 7,
        };
        let mut buf = meta.encode();
        buf[24..32].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            StoreMeta::decode(&buf),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn frame_header_roundtrip() {
        let h = FrameHeader {
            payload_len: 4096 * 16,
            event_count: 4096,
            base: 8192,
            t_min: 0.25,
            t_max: 993.5,
            touched_nodes: 511,
        };
        assert_eq!(FrameHeader::decode(&h.encode()), h);
    }

    #[test]
    fn expected_payload_accounts_for_features() {
        let meta = StoreMeta {
            feature_dim: 4,
            num_nodes: 1,
            num_events: 10,
            chunk_size: 10,
        };
        assert_eq!(meta.expected_payload_len(10), 10 * 16 + 10 * 4 * 4);
    }
}
