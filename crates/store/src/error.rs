//! Typed store errors: corruption is detected and reported, never a
//! panic.

use std::fmt;

use cascade_tgraph::SourceError;

/// Everything that can go wrong reading or writing a store file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the `CEVT` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not supported by this reader.
    VersionSkew {
        /// Version declared by the file.
        found: u16,
        /// Version this reader supports.
        supported: u16,
    },
    /// A chunk frame's checksum does not match its contents.
    CrcMismatch {
        /// Index of the corrupt chunk.
        chunk: usize,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the frame.
        computed: u32,
    },
    /// The file ends in the middle of a chunk frame (or before the
    /// declared event count was reached).
    TruncatedFrame {
        /// Index of the incomplete chunk.
        chunk: usize,
    },
    /// A frame header is internally inconsistent (implausible lengths,
    /// out-of-order base, out-of-range node ids).
    Corrupt {
        /// Index of the offending chunk.
        chunk: usize,
        /// What was inconsistent.
        message: String,
    },
}

impl StoreError {
    /// The chunk index the error is attributable to, when one is known.
    pub fn chunk(&self) -> Option<usize> {
        match self {
            StoreError::CrcMismatch { chunk, .. }
            | StoreError::TruncatedFrame { chunk }
            | StoreError::Corrupt { chunk, .. } => Some(*chunk),
            _ => None,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {}", e),
            StoreError::BadMagic { found } => {
                write!(f, "not a cascade event store (magic {:02x?})", found)
            }
            StoreError::VersionSkew { found, supported } => write!(
                f,
                "store format version {} not supported (reader supports {})",
                found, supported
            ),
            StoreError::CrcMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {}: crc mismatch (stored {:08x}, computed {:08x})",
                chunk, stored, computed
            ),
            StoreError::TruncatedFrame { chunk } => {
                write!(f, "chunk {}: truncated frame", chunk)
            }
            StoreError::Corrupt { chunk, message } => {
                write!(f, "chunk {}: corrupt frame: {}", chunk, message)
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for SourceError {
    fn from(e: StoreError) -> Self {
        SourceError {
            chunk: e.chunk(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_attribution() {
        assert_eq!(
            StoreError::CrcMismatch {
                chunk: 4,
                stored: 1,
                computed: 2
            }
            .chunk(),
            Some(4)
        );
        assert_eq!(StoreError::TruncatedFrame { chunk: 7 }.chunk(), Some(7));
        assert_eq!(StoreError::BadMagic { found: *b"nope" }.chunk(), None);
    }

    #[test]
    fn converts_to_source_error_with_chunk() {
        let s: SourceError = StoreError::TruncatedFrame { chunk: 2 }.into();
        assert_eq!(s.chunk, Some(2));
        assert!(s.message.contains("truncated"));
    }

    #[test]
    fn display_is_descriptive() {
        let e = StoreError::VersionSkew {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}
