#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-store
//!
//! Chunked, checksummed on-disk event store for out-of-core TGNN
//! training. A `CEVT` file is a fixed little-endian header followed by
//! per-chunk frames — each carrying its event count, time range, a
//! touched-node summary, and a CRC32 over header and payload — so
//! corruption anywhere in a chunk is detected and reported as a typed
//! [`StoreError`], never a panic.
//!
//! [`ChunkWriter`]/[`export_dataset`] produce store files;
//! [`ChunkReader`]/[`import_dataset`] read them back; and
//! [`StreamingEventSource`] feeds training directly from disk through a
//! bounded prefetch thread, yielding chunks bit-identical to the
//! in-memory [`InMemorySource`](cascade_tgraph::InMemorySource) over the
//! same events. [`ChunkWriter::sync`] and [`recover_log`] turn the same
//! format into a crash-consistent write-ahead log: every synced frame
//! survives a kill, and recovery returns the valid frame prefix while
//! discarding a torn tail.
//!
//! # Examples
//!
//! Round-trip a dataset through a store file:
//!
//! ```
//! use cascade_store::{export_dataset, import_dataset};
//! use cascade_tgraph::SynthConfig;
//!
//! let data = SynthConfig::wiki().with_scale(0.002).generate(7);
//! let path = std::env::temp_dir().join(format!("doc_{}.evt", std::process::id()));
//! let summary = export_dataset(&data, &path, 256).expect("export succeeds");
//! assert_eq!(summary.events, data.num_events());
//!
//! let back = import_dataset(&path, "roundtrip").expect("import succeeds");
//! assert_eq!(back.stream().events(), data.stream().events());
//! std::fs::remove_file(&path).ok();
//! ```

mod crc;
mod error;
mod format;
mod reader;
mod routing;
mod source;
mod wal;
mod writer;

pub use crc::{crc32, Crc32};
pub use error::StoreError;
pub use format::{FrameHeader, StoreMeta, MAGIC, VERSION};
pub use reader::{import_dataset, ChunkReader, StoredChunk};
pub use routing::{route_chunks, scan_chunks, ChunkSummary, RoutePlan};
pub use source::StreamingEventSource;
pub use wal::{recover_log, WalRecovery};
pub use writer::{export_dataset, ChunkWriter, StoreSummary};
