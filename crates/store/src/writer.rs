//! Writing store files: buffered chunk framing with a rewritten header.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use cascade_tgraph::{Dataset, Event};

use crate::crc::Crc32;
use crate::error::StoreError;
use crate::format::{FrameHeader, StoreMeta, NUM_EVENTS_OFFSET};

/// Streams events into a `CEVT` file, framing them into checksummed
/// chunks of a fixed size.
///
/// The header is written up front with `num_events = 0` and rewritten by
/// [`finish`](ChunkWriter::finish); a file that was never finished is
/// therefore self-evidently incomplete to the reader.
pub struct ChunkWriter {
    file: BufWriter<File>,
    meta: StoreMeta,
    /// Events buffered for the current chunk.
    pending: Vec<Event>,
    /// Feature rows buffered for the current chunk.
    pending_features: Vec<f32>,
    /// Events flushed into completed frames so far.
    written: usize,
    /// Frames flushed so far.
    chunks: usize,
    finished: bool,
}

impl ChunkWriter {
    /// Creates `path` (truncating any existing file) and writes a
    /// provisional header.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0` or `feature_dim` exceeds `u16::MAX`
    /// (writer misuse, not data corruption).
    pub fn create(
        path: &Path,
        num_nodes: usize,
        feature_dim: usize,
        chunk_size: usize,
    ) -> Result<Self, StoreError> {
        assert!(chunk_size > 0, "chunk size must be positive");
        assert!(feature_dim <= u16::MAX as usize, "feature dim exceeds u16");
        let meta = StoreMeta {
            feature_dim,
            num_nodes,
            num_events: 0,
            chunk_size,
        };
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&meta.encode())?;
        // Push the provisional header out of the userspace buffer right
        // away: a process killed before its first frame flush then
        // leaves a readable empty store, not a zero-byte file.
        file.flush()?;
        Ok(ChunkWriter {
            file,
            meta,
            pending: Vec::with_capacity(chunk_size),
            pending_features: Vec::with_capacity(chunk_size * feature_dim),
            written: 0,
            chunks: 0,
            finished: false,
        })
    }

    /// Appends one event with its feature row, flushing a frame whenever
    /// `chunk_size` events have accumulated.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when a frame flush fails.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range or the feature row has the
    /// wrong width (writer misuse, not data corruption).
    pub fn push(&mut self, event: Event, features: &[f32]) -> Result<(), StoreError> {
        assert!(!self.finished, "push after finish");
        assert!(
            event.src.index() < self.meta.num_nodes && event.dst.index() < self.meta.num_nodes,
            "event node id out of declared range"
        );
        assert_eq!(
            features.len(),
            self.meta.feature_dim,
            "feature row has wrong width"
        );
        self.pending.push(event);
        self.pending_features.extend_from_slice(features);
        if self.pending.len() == self.meta.chunk_size {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Flushes any buffered partial frame as its own chunk and syncs the
    /// file to stable storage — the durability point for write-ahead-log
    /// use: every event pushed before a `sync` survives a process kill.
    ///
    /// The header still declares zero events (only
    /// [`finish`](ChunkWriter::finish) rewrites it), so a synced-but-
    /// unfinished file is read back with
    /// [`recover_log`](crate::recover_log), which accepts the valid frame
    /// prefix instead of demanding the declared count. Because `sync`
    /// closes the pending frame, frame boundaries record exactly the
    /// caller's ack boundaries — recovery can replay batch-for-batch.
    ///
    /// Returns the total events durably framed so far.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the flush or fsync fails.
    pub fn sync(&mut self) -> Result<usize, StoreError> {
        assert!(!self.finished, "sync after finish");
        if !self.pending.is_empty() {
            self.flush_frame()?;
        }
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(self.written)
    }

    /// Events flushed into completed frames so far (excludes any pending
    /// partial frame not yet closed by `push`/`sync`/`finish`).
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes any partial final chunk, rewrites the header's event
    /// count, and syncs the file. Returns a summary of what was written.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when flushing or the header rewrite
    /// fails.
    pub fn finish(mut self) -> Result<StoreSummary, StoreError> {
        if !self.pending.is_empty() {
            self.flush_frame()?;
        }
        self.finished = true;
        // Drain the buffer before touching the underlying file directly:
        // get_mut() bypasses BufWriter's buffer, so an unflushed frame
        // would otherwise land at the seeked position.
        self.file.flush()?;
        self.file
            .get_mut()
            .seek(SeekFrom::Start(NUM_EVENTS_OFFSET))?;
        self.file
            .get_mut()
            .write_all(&(self.written as u64).to_le_bytes())?;
        self.file.flush()?;
        Ok(StoreSummary {
            events: self.written,
            chunks: self.chunks,
            chunk_size: self.meta.chunk_size,
            feature_dim: self.meta.feature_dim,
            num_nodes: self.meta.num_nodes,
        })
    }

    fn flush_frame(&mut self) -> Result<(), StoreError> {
        let count = self.pending.len();
        let payload_len = self.meta.expected_payload_len(count);
        let mut payload = Vec::with_capacity(payload_len);
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        // Distinct touched nodes via sort + dedup: deterministic and
        // allocation-bounded, no hashing involved.
        let mut touched: Vec<u32> = Vec::with_capacity(count * 2);
        for e in &self.pending {
            payload.extend_from_slice(&e.src.0.to_le_bytes());
            payload.extend_from_slice(&e.dst.0.to_le_bytes());
            payload.extend_from_slice(&e.time.to_le_bytes());
            t_min = t_min.min(e.time);
            t_max = t_max.max(e.time);
            touched.push(e.src.0);
            touched.push(e.dst.0);
        }
        for f in &self.pending_features {
            payload.extend_from_slice(&f.to_le_bytes());
        }
        debug_assert_eq!(payload.len(), payload_len);
        touched.sort_unstable();
        touched.dedup();
        let header = FrameHeader {
            payload_len,
            event_count: count,
            base: self.written,
            t_min,
            t_max,
            touched_nodes: touched.len(),
        }
        .encode();
        let mut crc = Crc32::new();
        crc.update(&header);
        crc.update(&payload);
        self.file.write_all(&header)?;
        self.file.write_all(&payload)?;
        self.file.write_all(&crc.finish().to_le_bytes())?;
        self.written += count;
        self.chunks += 1;
        self.pending.clear();
        self.pending_features.clear();
        Ok(())
    }
}

/// What [`ChunkWriter::finish`] wrote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSummary {
    /// Total events written.
    pub events: usize,
    /// Chunk frames written.
    pub chunks: usize,
    /// Nominal chunk size.
    pub chunk_size: usize,
    /// Edge-feature width.
    pub feature_dim: usize,
    /// Declared node count.
    pub num_nodes: usize,
}

/// Exports a whole in-memory [`Dataset`] to a store file at `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn export_dataset(
    data: &Dataset,
    path: &Path,
    chunk_size: usize,
) -> Result<StoreSummary, StoreError> {
    let mut w = ChunkWriter::create(path, data.num_nodes(), data.features().dim(), chunk_size)?;
    for (i, e) in data.stream().iter().enumerate() {
        w.push(*e, data.features().row(i))?;
    }
    w.finish()
}
