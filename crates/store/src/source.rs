//! Out-of-core event sources: a prefetch thread reads chunk frames ahead
//! of training, bounded by a small read-ahead window.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

use cascade_tgraph::{EventChunk, EventSource, SourceError};

use crate::error::StoreError;
use crate::format::StoreMeta;
use crate::reader::{ChunkReader, StoredChunk};

/// An [`EventSource`] that streams a `CEVT` file chunk by chunk.
///
/// A dedicated prefetch thread reads and checksums frames, keeping up to
/// `read_ahead` decoded chunks buffered in a bounded channel. Disk I/O
/// and CRC work therefore overlap with whatever the consumer does with
/// the previous chunk (table building, training) — the overlap the
/// `store_io` bench quantifies. At most `read_ahead + 1` chunks are ever
/// resident, which is what makes training out-of-core.
pub struct StreamingEventSource {
    path: PathBuf,
    meta: StoreMeta,
    name: String,
    read_ahead: usize,
    rx: Option<Receiver<Result<StoredChunk, StoreError>>>,
    worker: Option<JoinHandle<()>>,
}

impl StreamingEventSource {
    /// Opens `path`, validates its header, and starts the prefetch
    /// thread with a buffer of `read_ahead` chunks (clamped to at least
    /// one).
    ///
    /// # Errors
    ///
    /// Propagates header validation failures from [`ChunkReader::open`].
    pub fn open(path: &Path, read_ahead: usize) -> Result<Self, StoreError> {
        // Validate the header on the caller's thread so open errors are
        // immediate and typed.
        let reader = ChunkReader::open(path)?;
        let meta = reader.meta();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_string());
        let mut source = StreamingEventSource {
            path: path.to_path_buf(),
            meta,
            name,
            read_ahead: read_ahead.max(1),
            rx: None,
            worker: None,
        };
        source.spawn_worker();
        Ok(source)
    }

    /// The store file's validated header.
    pub fn meta(&self) -> StoreMeta {
        self.meta
    }

    fn spawn_worker(&mut self) {
        let (tx, rx) = sync_channel::<Result<StoredChunk, StoreError>>(self.read_ahead);
        let path = self.path.clone();
        let builder = std::thread::Builder::new().name("store-prefetch".to_string());
        let handle = builder
            .spawn(move || {
                let mut reader = match ChunkReader::open(&path) {
                    Ok(r) => r,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                };
                loop {
                    match reader.next_frame() {
                        Ok(Some(chunk)) => {
                            // A send error means the consumer dropped the
                            // receiver (reset or drop): stop reading.
                            if tx.send(Ok(chunk)).is_err() {
                                return;
                            }
                        }
                        // Clean end of stream: channel disconnect is the
                        // end-of-stream signal.
                        Ok(None) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })
            .expect("spawning the prefetch thread cannot fail under normal limits");
        self.rx = Some(rx);
        self.worker = Some(handle);
    }

    fn shutdown(&mut self) {
        // Dropping the receiver unblocks a worker parked on send(); then
        // the thread exits and can be joined.
        self.rx = None;
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl EventSource for StreamingEventSource {
    fn num_nodes(&self) -> usize {
        self.meta.num_nodes
    }

    fn num_events(&self) -> usize {
        self.meta.num_events
    }

    fn feature_dim(&self) -> usize {
        self.meta.feature_dim
    }

    fn chunk_size(&self) -> usize {
        self.meta.chunk_size
    }

    fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError> {
        let Some(rx) = self.rx.as_ref() else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(chunk)) => Ok(Some(EventChunk {
                index: chunk.index,
                base: chunk.base,
                events: chunk.events,
                features: chunk.features,
            })),
            Ok(Err(e)) => {
                let err: SourceError = e.into();
                self.shutdown();
                Err(err)
            }
            // Disconnected: the worker hit a clean end of stream.
            Err(_) => {
                self.shutdown();
                Ok(None)
            }
        }
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.shutdown();
        self.spawn_worker();
        Ok(())
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl Drop for StreamingEventSource {
    fn drop(&mut self) {
        self.shutdown();
    }
}
