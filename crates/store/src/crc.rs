//! Hand-rolled CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) —
//! the checksum guarding every chunk frame of the store format.
//!
//! Table-driven, built at compile time; no registry dependency and no
//! hardware intrinsics, so the digest is identical on every platform.

/// The reflected CRC32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table computed at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// An incremental CRC32 digest.
///
/// # Examples
///
/// ```
/// use cascade_store::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF43926);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_standard() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let a = crc32(&[0x00, 0x01, 0x02, 0x03]);
        let b = crc32(&[0x00, 0x01, 0x02, 0x83]);
        assert_ne!(a, b);
    }
}
