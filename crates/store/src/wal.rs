//! Write-ahead-log recovery: reading back the valid frame prefix of an
//! unfinished `CEVT` file.
//!
//! A WAL written by [`ChunkWriter::push`](crate::ChunkWriter::push) +
//! [`ChunkWriter::sync`](crate::ChunkWriter::sync) is crash-consistent
//! by construction: every synced frame is durable, and a kill mid-append
//! leaves at most one torn frame at the tail. [`recover_log`] scans the
//! file frame by frame with full CRC/shape validation and returns the
//! longest valid prefix; a torn or corrupt tail ends the scan (and is
//! reported) instead of failing it — classic WAL recovery semantics.
//!
//! Frame boundaries are preserved in the result: one [`StoredChunk`] per
//! synced batch, so a consumer that applies state batch-by-batch can
//! replay the log with the exact batch partition of the original run.

use std::path::Path;

use crate::error::StoreError;
use crate::format::StoreMeta;
use crate::reader::{ChunkReader, StoredChunk};

/// The valid prefix of a write-ahead log, plus how the scan ended.
#[derive(Debug)]
pub struct WalRecovery {
    /// The validated file header (its `num_events` is 0 for any log that
    /// was never `finish`ed — use [`events`](WalRecovery::events)).
    pub meta: StoreMeta,
    /// The recovered frames, in order, with their original boundaries.
    pub frames: Vec<StoredChunk>,
    /// Total events across `frames`.
    pub events: usize,
    /// The frame-level error that ended the scan — `Some` when a torn or
    /// corrupt tail was discarded (expected after a kill mid-append),
    /// `None` when the file ended cleanly at a frame boundary.
    pub torn_tail: Option<StoreError>,
}

impl WalRecovery {
    /// All recovered events flattened into stream order.
    pub fn events_flat(&self) -> Vec<cascade_tgraph::Event> {
        let mut out = Vec::with_capacity(self.events);
        for f in &self.frames {
            out.extend_from_slice(&f.events);
        }
        out
    }
}

/// Scans the WAL at `path` and returns its longest valid frame prefix.
///
/// Frame-level damage (`TruncatedFrame`, `CrcMismatch`, `Corrupt`) ends
/// the scan and is reported as [`WalRecovery::torn_tail`]; everything
/// before it has already been CRC-verified and is returned. File-level
/// problems (unreadable file, bad magic, version skew) are real errors.
///
/// # Errors
///
/// Returns [`StoreError::Io`], [`StoreError::BadMagic`], or
/// [`StoreError::VersionSkew`] when the file itself cannot be opened or
/// its header is not a valid `CEVT` header.
pub fn recover_log(path: &Path) -> Result<WalRecovery, StoreError> {
    let mut reader = ChunkReader::open(path)?;
    let meta = reader.meta();
    let mut frames = Vec::new();
    let mut events = 0usize;
    let torn_tail = loop {
        match reader.next_frame_tolerant() {
            Ok(Some(frame)) => {
                events += frame.events.len();
                frames.push(frame);
            }
            Ok(None) => break None,
            Err(
                e @ (StoreError::TruncatedFrame { .. }
                | StoreError::CrcMismatch { .. }
                | StoreError::Corrupt { .. }),
            ) => break Some(e),
            Err(e) => return Err(e),
        }
    };
    Ok(WalRecovery {
        meta,
        frames,
        events,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ChunkWriter;
    use cascade_tgraph::Event;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cascade_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{}", std::process::id(), name))
    }

    fn ev(i: usize) -> Event {
        Event::new((i % 5) as u32, ((i + 1) % 5) as u32, i as f64)
    }

    /// Writes `batches` synced batches of `per` events each, never
    /// calling `finish` — the state a killed server leaves behind.
    fn write_wal(path: &std::path::Path, batches: usize, per: usize) -> ChunkWriter {
        let mut w = ChunkWriter::create(path, 5, 2, 64).unwrap();
        let mut id = 0usize;
        for _ in 0..batches {
            for _ in 0..per {
                w.push(ev(id), &[id as f32, 0.5]).unwrap();
                id += 1;
            }
            w.sync().unwrap();
        }
        w
    }

    #[test]
    fn unfinished_log_recovers_every_synced_frame() {
        let path = tmp("clean.wal");
        let w = write_wal(&path, 3, 4);
        // Kill: the writer is forgotten, finish never runs.
        std::mem::forget(w);

        let rec = recover_log(&path).unwrap();
        assert_eq!(rec.events, 12);
        assert_eq!(rec.frames.len(), 3, "one frame per synced batch");
        assert!(rec.torn_tail.is_none());
        assert_eq!(rec.meta.num_events, 0, "header was never finished");
        let flat = rec.events_flat();
        assert_eq!(flat, (0..12).map(ev).collect::<Vec<_>>());
        assert_eq!(rec.frames[1].base, 4);
        assert_eq!(rec.frames[1].features.len(), 4 * 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_reported() {
        let path = tmp("torn.wal");
        let w = write_wal(&path, 2, 3);
        std::mem::forget(w);
        // Simulate a kill mid-append: half a frame header of garbage.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xAB; 17]).unwrap();
        drop(f);

        let rec = recover_log(&path).unwrap();
        assert_eq!(rec.events, 6, "only the synced prefix survives");
        assert_eq!(rec.frames.len(), 2);
        assert!(matches!(
            rec.torn_tail,
            Some(StoreError::TruncatedFrame { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_tail_frame_ends_scan_after_valid_prefix() {
        let path = tmp("crc.wal");
        let w = write_wal(&path, 3, 2);
        std::mem::forget(w);
        // Flip a payload byte inside the last frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover_log(&path).unwrap();
        assert_eq!(rec.events, 4);
        assert!(matches!(
            rec.torn_tail,
            Some(StoreError::CrcMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finished_files_also_recover() {
        let path = tmp("finished.wal");
        let mut w = write_wal(&path, 2, 3);
        w.push(ev(6), &[6.0, 0.5]).unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.events, 7);

        let rec = recover_log(&path).unwrap();
        assert_eq!(rec.events, 7);
        assert!(rec.torn_tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_unfinished_log_recovers_to_nothing() {
        let path = tmp("empty.wal");
        let w = ChunkWriter::create(&path, 5, 2, 64).unwrap();
        std::mem::forget(w);
        let rec = recover_log(&path).unwrap();
        assert_eq!(rec.events, 0);
        assert!(rec.frames.is_empty());
        assert!(rec.torn_tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_real_error() {
        assert!(matches!(
            recover_log(std::path::Path::new("/nonexistent/nope.wal")),
            Err(StoreError::Io(_))
        ));
    }
}
