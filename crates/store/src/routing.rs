//! Header-only chunk scan and worker routing for distributed training.
//!
//! A dist launcher needs the chunk layout of a `CEVT` file — how many
//! chunks, their event counts, time ranges, and touched-node summaries —
//! *before* any worker starts streaming, so it can assign chunk
//! partitions and report expected load per worker. Decoding payloads
//! for that would read the whole file; [`scan_chunks`] instead walks
//! only the 48-byte frame headers, seeking over each payload, so the
//! scan cost is proportional to the chunk *count*, not the event count.
//!
//! The walker is deliberately separate from
//! [`ChunkReader`](crate::ChunkReader): the reader enforces base
//! continuity against events it has decoded, while the scan never
//! decodes events at all (and skips CRC verification — corruption in a
//! payload is still caught by the worker that streams the chunk).
//! Header-level inconsistencies (bad base chaining, implausible counts)
//! are reported as the same typed [`StoreError`]s the reader uses.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::error::StoreError;
use crate::format::{FrameHeader, StoreMeta, FRAME_HEADER_LEN, HEADER_LEN};

/// One chunk's frame header plus its position in the stream — everything
/// a scheduler needs without touching the payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChunkSummary {
    /// Chunk index in the file (0-based).
    pub index: usize,
    /// Global stream id of the chunk's first event.
    pub base: usize,
    /// Events in the chunk.
    pub event_count: usize,
    /// Smallest event timestamp in the chunk.
    pub t_min: f64,
    /// Largest event timestamp in the chunk.
    pub t_max: f64,
    /// Distinct nodes the chunk's events touch.
    pub touched_nodes: usize,
}

/// Walks a `CEVT` file's frame headers without decoding payloads,
/// returning the validated file header and one [`ChunkSummary`] per
/// chunk in stream order.
///
/// # Errors
///
/// [`StoreError::Io`] when the file cannot be opened or seeked, the
/// header validation errors of [`StoreMeta::decode`],
/// [`StoreError::TruncatedFrame`] when the file ends mid-header or
/// before the declared event count, and [`StoreError::Corrupt`] on
/// header-level inconsistencies (base discontinuity, implausible event
/// count or payload length).
pub fn scan_chunks(path: &Path) -> Result<(StoreMeta, Vec<ChunkSummary>), StoreError> {
    let mut file = BufReader::new(File::open(path)?);
    let mut header_buf = [0u8; HEADER_LEN];
    read_fully(&mut file, &mut header_buf, 0)?;
    let meta = StoreMeta::decode(&header_buf)?;

    let mut summaries = Vec::with_capacity(meta.num_chunks());
    let mut events_seen = 0usize;
    loop {
        let chunk = summaries.len();
        let mut frame_buf = [0u8; FRAME_HEADER_LEN];
        let first = file.read(&mut frame_buf)?;
        if first == 0 {
            if events_seen != meta.num_events {
                return Err(StoreError::TruncatedFrame { chunk });
            }
            // Seeking over a payload succeeds even past end of file, so a
            // torn final frame only shows up here: the walked position
            // must not exceed the real file length.
            let pos = file.stream_position()?;
            let len = file.get_ref().metadata()?.len();
            if pos > len {
                return Err(StoreError::TruncatedFrame {
                    chunk: chunk.saturating_sub(1),
                });
            }
            return Ok((meta, summaries));
        }
        let mut got = first;
        while got < FRAME_HEADER_LEN {
            let n = file.read(&mut frame_buf[got..])?;
            if n == 0 {
                return Err(StoreError::TruncatedFrame { chunk });
            }
            got += n;
        }
        let header = FrameHeader::decode(&frame_buf);
        if header.event_count == 0 || header.event_count > meta.chunk_size {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "frame declares {} events (chunk size {})",
                    header.event_count, meta.chunk_size
                ),
            });
        }
        if header.payload_len != meta.expected_payload_len(header.event_count) {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "payload length {} inconsistent with {} events of dim {}",
                    header.payload_len, header.event_count, meta.feature_dim
                ),
            });
        }
        if header.base != events_seen {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "frame base {} but {} events seen so far",
                    header.base, events_seen
                ),
            });
        }
        // Skip payload + trailing CRC without reading them.
        file.seek(SeekFrom::Current(header.payload_len as i64 + 4))?;
        events_seen += header.event_count;
        summaries.push(ChunkSummary {
            index: chunk,
            base: header.base,
            event_count: header.event_count,
            t_min: header.t_min,
            t_max: header.t_max,
            touched_nodes: header.touched_nodes,
        });
    }
}

/// Per-worker routing plan over a scanned chunk list.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutePlan {
    /// `plan[w]` lists the chunk indices worker `w` streams, ascending.
    pub chunks: Vec<Vec<usize>>,
    /// `events[w]` totals the events worker `w` will process.
    pub events: Vec<usize>,
    /// `touched[w]` sums the per-chunk touched-node summaries of worker
    /// `w`'s chunks — a load-balance indicator (an upper bound on
    /// distinct nodes, since chunks overlap).
    pub touched: Vec<usize>,
}

/// Routes chunks to `workers` by the same round-robin rule
/// [`PartitionedSource`](cascade_tgraph::PartitionedSource) applies while
/// streaming (`chunk.index % workers`), so the plan predicts exactly
/// what each worker will see.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn route_chunks(summaries: &[ChunkSummary], workers: usize) -> RoutePlan {
    assert!(workers > 0, "route_chunks needs at least one worker");
    let mut plan = RoutePlan {
        chunks: vec![Vec::new(); workers],
        events: vec![0; workers],
        touched: vec![0; workers],
    };
    for s in summaries {
        let w = s.index % workers;
        plan.chunks[w].push(s.index);
        plan.events[w] += s.event_count;
        plan.touched[w] += s.touched_nodes;
    }
    plan
}

fn read_fully(file: &mut BufReader<File>, buf: &mut [u8], chunk: usize) -> Result<(), StoreError> {
    let mut got = 0;
    while got < buf.len() {
        let n = file.read(&mut buf[got..])?;
        if n == 0 {
            return Err(StoreError::TruncatedFrame { chunk });
        }
        got += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ChunkReader;
    use crate::writer::export_dataset;
    use cascade_tgraph::SynthConfig;
    use std::path::PathBuf;

    fn store_file(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("routing_{}_{}.evt", tag, std::process::id()))
    }

    #[test]
    fn scan_matches_full_decode() {
        let data = SynthConfig::wiki().with_scale(0.004).generate(3);
        let path = store_file("scan");
        export_dataset(&data, &path, 128).expect("export succeeds");

        let (meta, summaries) = scan_chunks(&path).expect("scan succeeds");
        assert_eq!(meta.num_events, data.num_events());
        assert_eq!(summaries.len(), meta.num_chunks());

        let mut reader = ChunkReader::open(&path).expect("open succeeds");
        let mut decoded = 0usize;
        while let Some(chunk) = reader.next_frame().expect("frames are valid") {
            let s = summaries[chunk.index];
            assert_eq!(s.base, chunk.base);
            assert_eq!(s.event_count, chunk.events.len());
            assert_eq!(s.t_min.to_bits(), chunk.header.t_min.to_bits());
            assert_eq!(s.t_max.to_bits(), chunk.header.t_max.to_bits());
            assert_eq!(s.touched_nodes, chunk.header.touched_nodes);
            decoded += 1;
        }
        assert_eq!(decoded, summaries.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_detects_truncation() {
        let data = SynthConfig::wiki().with_scale(0.004).generate(5);
        let path = store_file("trunc");
        export_dataset(&data, &path, 128).expect("export succeeds");
        let bytes = std::fs::read(&path).expect("file exists");
        std::fs::write(&path, &bytes[..bytes.len() - 20]).expect("rewrite succeeds");
        assert!(matches!(
            scan_chunks(&path),
            Err(StoreError::TruncatedFrame { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn routing_covers_every_chunk_exactly_once() {
        let data = SynthConfig::wiki().with_scale(0.004).generate(7);
        let path = store_file("route");
        export_dataset(&data, &path, 64).expect("export succeeds");
        let (meta, summaries) = scan_chunks(&path).expect("scan succeeds");

        for workers in [1usize, 2, 3, 5] {
            let plan = route_chunks(&summaries, workers);
            let mut seen = vec![false; summaries.len()];
            for (w, chunks) in plan.chunks.iter().enumerate() {
                for &c in chunks {
                    assert_eq!(c % workers, w);
                    assert!(!seen[c], "chunk {} routed twice", c);
                    seen[c] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "a chunk was never routed");
            assert_eq!(plan.events.iter().sum::<usize>(), meta.num_events);
        }
        std::fs::remove_file(&path).ok();
    }
}
