//! Reading store files: frame-by-frame decode with CRC verification.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use cascade_tgraph::{Dataset, Event, EventStream};

use crate::crc::Crc32;
use crate::error::StoreError;
use crate::format::{FrameHeader, StoreMeta, EVENT_LEN, FRAME_HEADER_LEN, HEADER_LEN};

/// One decoded chunk frame.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredChunk {
    /// Chunk index in the file (0-based).
    pub index: usize,
    /// Global stream id of `events[0]`.
    pub base: usize,
    /// The chunk's events, in stream order.
    pub events: Vec<Event>,
    /// Row-major feature rows, `feature_dim` floats per event.
    pub features: Vec<f32>,
    /// Frame summary as stored on disk.
    pub header: FrameHeader,
}

/// Sequential reader over a `CEVT` file.
///
/// Every frame is checksummed before it is yielded: a corrupt chunk
/// surfaces as a typed [`StoreError`], and every chunk *before* the
/// corruption has already been yielded intact.
pub struct ChunkReader {
    file: BufReader<File>,
    meta: StoreMeta,
    /// Frames yielded so far (index of the next frame).
    next_index: usize,
    /// Events yielded so far (expected `base` of the next frame).
    events_seen: usize,
}

impl ChunkReader {
    /// Opens `path` and validates the file header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened,
    /// [`StoreError::TruncatedFrame`] when it is shorter than a header,
    /// plus the header validation errors of [`StoreMeta::decode`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = BufReader::new(File::open(path)?);
        let mut buf = [0u8; HEADER_LEN];
        read_exact_or_truncated(&mut file, &mut buf, 0)?;
        let meta = StoreMeta::decode(&buf)?;
        Ok(ChunkReader {
            file,
            meta,
            next_index: 0,
            events_seen: 0,
        })
    }

    /// The validated file header.
    pub fn meta(&self) -> StoreMeta {
        self.meta
    }

    /// Reads the next frame; `Ok(None)` at a clean end of file.
    ///
    /// # Errors
    ///
    /// [`StoreError::TruncatedFrame`] when the file ends mid-frame or
    /// before the header's declared event count,
    /// [`StoreError::Corrupt`] on an internally inconsistent frame
    /// header, [`StoreError::CrcMismatch`] when the checksum fails, and
    /// [`StoreError::Io`] on other read failures.
    pub fn next_frame(&mut self) -> Result<Option<StoredChunk>, StoreError> {
        self.read_frame(true)
    }

    /// Like [`next_frame`](Self::next_frame), but a clean end of file at
    /// a frame boundary is `Ok(None)` even when the header's declared
    /// event count has not been reached.
    ///
    /// This is the write-ahead-log read mode: a WAL produced by
    /// [`ChunkWriter::sync`](crate::ChunkWriter::sync) is never
    /// `finish`ed, so its header permanently declares zero events while
    /// the frames behind it are valid. All per-frame validation (CRC,
    /// shape, base continuity) is unchanged — only the end-of-stream
    /// accounting is relaxed.
    pub fn next_frame_tolerant(&mut self) -> Result<Option<StoredChunk>, StoreError> {
        self.read_frame(false)
    }

    fn read_frame(&mut self, strict_eof: bool) -> Result<Option<StoredChunk>, StoreError> {
        let chunk = self.next_index;
        let mut header_buf = [0u8; FRAME_HEADER_LEN];
        // A clean EOF at a frame boundary ends the stream — but (in
        // strict mode) only if the declared event count has been reached.
        let first = self.file.read(&mut header_buf)?;
        if first == 0 {
            if strict_eof && self.events_seen != self.meta.num_events {
                return Err(StoreError::TruncatedFrame { chunk });
            }
            return Ok(None);
        }
        let mut got = first;
        while got < FRAME_HEADER_LEN {
            let n = self.file.read(&mut header_buf[got..])?;
            if n == 0 {
                return Err(StoreError::TruncatedFrame { chunk });
            }
            got += n;
        }
        let header = FrameHeader::decode(&header_buf);
        // Sanity before trusting payload_len for an allocation.
        if header.event_count == 0 || header.event_count > self.meta.chunk_size {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "frame declares {} events (chunk size {})",
                    header.event_count, self.meta.chunk_size
                ),
            });
        }
        if header.payload_len != self.meta.expected_payload_len(header.event_count) {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "payload length {} inconsistent with {} events of dim {}",
                    header.payload_len, header.event_count, self.meta.feature_dim
                ),
            });
        }
        if header.base != self.events_seen {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "frame base {} but {} events seen so far",
                    header.base, self.events_seen
                ),
            });
        }
        let mut payload = vec![0u8; header.payload_len + 4];
        read_exact_or_truncated(&mut self.file, &mut payload, chunk)?;
        let stored = u32::from_le_bytes(
            payload[header.payload_len..]
                .try_into()
                .expect("trailing crc is 4 bytes"),
        );
        let mut crc = Crc32::new();
        crc.update(&header_buf);
        crc.update(&payload[..header.payload_len]);
        let computed = crc.finish();
        if stored != computed {
            return Err(StoreError::CrcMismatch {
                chunk,
                stored,
                computed,
            });
        }
        let (events, features) = decode_payload(
            &payload[..header.payload_len],
            header.event_count,
            self.meta,
            chunk,
        )?;
        self.next_index += 1;
        self.events_seen += header.event_count;
        Ok(Some(StoredChunk {
            index: chunk,
            base: header.base,
            events,
            features,
            header,
        }))
    }
}

fn read_exact_or_truncated(
    file: &mut BufReader<File>,
    buf: &mut [u8],
    chunk: usize,
) -> Result<(), StoreError> {
    let mut got = 0;
    while got < buf.len() {
        let n = file.read(&mut buf[got..])?;
        if n == 0 {
            return Err(StoreError::TruncatedFrame { chunk });
        }
        got += n;
    }
    Ok(())
}

fn decode_payload(
    payload: &[u8],
    count: usize,
    meta: StoreMeta,
    chunk: usize,
) -> Result<(Vec<Event>, Vec<f32>), StoreError> {
    let mut events = Vec::with_capacity(count);
    for i in 0..count {
        let off = i * EVENT_LEN;
        let src = u32::from_le_bytes(payload[off..off + 4].try_into().expect("slice is 4 bytes"));
        let dst = u32::from_le_bytes(
            payload[off + 4..off + 8]
                .try_into()
                .expect("slice is 4 bytes"),
        );
        let time = f64::from_le_bytes(
            payload[off + 8..off + 16]
                .try_into()
                .expect("slice is 8 bytes"),
        );
        if src as usize >= meta.num_nodes || dst as usize >= meta.num_nodes {
            return Err(StoreError::Corrupt {
                chunk,
                message: format!(
                    "event {} references node {} outside declared range {}",
                    i,
                    src.max(dst),
                    meta.num_nodes
                ),
            });
        }
        events.push(Event::new(src, dst, time));
    }
    let mut features = Vec::with_capacity(count * meta.feature_dim);
    let feat_base = count * EVENT_LEN;
    for i in 0..count * meta.feature_dim {
        let off = feat_base + i * 4;
        features.push(f32::from_le_bytes(
            payload[off..off + 4].try_into().expect("slice is 4 bytes"),
        ));
    }
    Ok((events, features))
}

/// Reads an entire store file back into an in-memory [`Dataset`].
///
/// # Errors
///
/// Propagates any [`StoreError`] raised while streaming the frames, and
/// reports event-order violations as [`StoreError::Corrupt`].
pub fn import_dataset(path: &Path, name: &str) -> Result<Dataset, StoreError> {
    let mut reader = ChunkReader::open(path)?;
    let meta = reader.meta();
    let mut events = Vec::with_capacity(meta.num_events);
    let mut features = Vec::with_capacity(meta.num_events * meta.feature_dim);
    while let Some(chunk) = reader.next_frame()? {
        events.extend_from_slice(&chunk.events);
        features.extend_from_slice(&chunk.features);
    }
    let stream = EventStream::new(events).map_err(|e| StoreError::Corrupt {
        chunk: 0,
        message: format!("stored events are not a valid stream: {}", e),
    })?;
    let feats = if meta.feature_dim == 0 {
        cascade_tgraph::EdgeFeatures::none()
    } else {
        cascade_tgraph::EdgeFeatures::new(features, meta.feature_dim)
    };
    Ok(Dataset::new(name, stream, feats))
}
