//! Seeded violation: an `arena::take_*` buffer that is neither
//! recycled nor moved out — it leaks from the recycling pool at the end
//! of `scale`.

use crate::arena;

/// Scales into an arena scratch buffer and forgets to recycle it.
pub fn scale(v: &[f32], k: f32) {
    let mut buf = arena::take_copy(v);
    for x in buf.iter_mut() {
        *x *= k;
    }
    publish(&buf);
}

/// The balanced twin: recycled on the way out — clean.
pub fn scale_balanced(v: &[f32], k: f32) {
    let mut buf = arena::take_copy(v);
    for x in buf.iter_mut() {
        *x *= k;
    }
    publish(&buf);
    arena::recycle(buf);
}
