//! Seeded violations: one half of a cross-file lock-order cycle
//! (`scan` → `compute`; stage.rs takes the opposite order) and a guard
//! held across a blocking channel send.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pipeline {
    scan: Mutex<Vec<u64>>,
    compute: Mutex<Vec<f32>>,
    tx: Sender<u64>,
}

impl Pipeline {
    /// Acquires `scan` then `compute` — stage.rs's `flush` does the
    /// reverse, so the cycle only exists across files.
    pub fn drain(&self) {
        let s = self.scan.lock();
        let c = self.compute.lock();
        drop(c);
        drop(s);
    }

    /// The `scan` guard is live across the blocking `send`.
    pub fn publish(&self) {
        let s = self.scan.lock();
        self.tx.send(s.len() as u64);
        drop(s);
    }

    /// Locks `scan` alone — clean by itself, but stage.rs calls this
    /// while holding `compute`, closing the cycle through the call
    /// graph.
    pub fn rescan(&self) {
        let s = self.scan.lock();
        drop(s);
    }
}
