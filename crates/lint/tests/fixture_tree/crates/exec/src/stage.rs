//! Seeded violations: the other half of the cross-file lock-order
//! cycle (`compute` → `scan`), directly and through a call edge.

use std::sync::Mutex;

pub struct Stage {
    compute: Mutex<Vec<f32>>,
    scan: Mutex<Vec<u64>>,
}

impl Stage {
    /// Acquires `compute` then `scan` — the reverse of pipeline.rs's
    /// `drain`.
    pub fn flush(&self) {
        let c = self.compute.lock();
        let s = self.scan.lock();
        drop(s);
        drop(c);
    }

    /// Holds `compute` while calling `rescan` (pipeline.rs), which
    /// locks `scan`: the same cycle, but only visible interprocedurally.
    pub fn reconcile(&self) {
        let c = self.compute.lock();
        self.rescan();
        drop(c);
    }

    /// Consistent `compute`-only usage: clean.
    pub fn tally(&self) -> usize {
        let c = self.compute.lock();
        let n = c.len();
        drop(c);
        n
    }
}
