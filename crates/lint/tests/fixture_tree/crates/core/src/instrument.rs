//! Telemetry module: allowlisted for wall-clock reads (`det-wallclock`
//! never fires here) — but the *value* it returns is still tainted, and
//! trainer.rs feeding it into an optimizer step is caught cross-file by
//! `det-taint`.

use std::time::Instant;

/// Seconds since the call — a wall-clock read, fine for reports.
pub fn stamp_secs() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
