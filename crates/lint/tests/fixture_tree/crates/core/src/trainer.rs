//! Seeded violation: a wall-clock value from the allowlisted telemetry
//! module (instrument.rs) flows into a parameter update — `det-taint`
//! flags the sink call site even though the clock read itself was
//! legitimate.

pub struct Trainer {
    opt: Opt,
}

impl Trainer {
    /// The learning rate comes from a clock: replay is no longer
    /// bit-identical.
    pub fn tune(&mut self) {
        let lr = stamp_secs();
        self.opt.step(lr);
    }

    /// Config-derived updates are deterministic: clean.
    pub fn tune_fixed(&mut self, lr: f64) {
        let scaled = lr * 0.5;
        self.opt.step(scaled);
    }
}
