//! Cross-file integration test for the flow-aware analyses: scans the
//! deliberately-broken mini workspace in `tests/fixture_tree/` and
//! asserts every seeded violation is caught — and nothing else is.
//!
//! The seeded bugs are spread across files on purpose: the lock-order
//! cycle only exists between pipeline.rs and stage.rs, and the
//! determinism taint originates in the allowlisted telemetry module but
//! sinks in trainer.rs. A per-file analyzer cannot catch either.

use std::path::PathBuf;

use cascade_lint::{scan_workspace, Finding};

fn tree_findings() -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_tree");
    let (findings, _suppressed, files) = scan_workspace(&root).expect("fixture tree scans cleanly");
    assert!(files >= 6, "all fixture-tree files walked, got {files}");
    findings
}

fn of<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn seeded_cross_file_lock_cycle_is_caught() {
    let findings = tree_findings();
    let cycle = of(&findings, "conc-lock-order");
    assert!(
        cycle
            .iter()
            .any(|f| f.file == "crates/exec/src/pipeline.rs"),
        "drain's scan→compute edge flagged: {cycle:?}"
    );
    assert!(
        cycle.iter().any(|f| f.file == "crates/exec/src/stage.rs"),
        "flush's compute→scan edge flagged: {cycle:?}"
    );
    // The interprocedural edge: reconcile holds `compute` while calling
    // rescan (another file), which locks `scan`.
    assert!(
        cycle
            .iter()
            .any(|f| f.file == "crates/exec/src/stage.rs" && f.snippet.contains("rescan")),
        "the call-graph edge through rescan() flagged at its call site: {cycle:?}"
    );
}

#[test]
fn seeded_guard_across_blocking_send_is_caught() {
    let findings = tree_findings();
    let held = of(&findings, "conc-guard-across-blocking");
    assert_eq!(held.len(), 1, "exactly the seeded send: {held:?}");
    assert_eq!(held[0].file, "crates/exec/src/pipeline.rs");
    assert!(held[0].snippet.contains("send"));
}

#[test]
fn seeded_wallclock_taint_crosses_files() {
    let findings = tree_findings();
    let taint = of(&findings, "det-taint");
    assert_eq!(
        taint.len(),
        1,
        "exactly the seeded optimizer step: {taint:?}"
    );
    assert_eq!(taint[0].file, "crates/core/src/trainer.rs");
    assert!(
        taint[0].snippet.contains("step"),
        "flagged at the sink call site: {:?}",
        taint[0]
    );
}

#[test]
fn seeded_arena_leak_is_caught() {
    let findings = tree_findings();
    let leaks = of(&findings, "arena-take-balance");
    assert_eq!(
        leaks.len(),
        1,
        "scale leaks, scale_balanced does not: {leaks:?}"
    );
    assert_eq!(leaks[0].file, "crates/tensor/src/ops/scale.rs");
}

#[test]
fn telemetry_wallclock_stays_allowlisted() {
    let findings = tree_findings();
    assert!(
        !findings
            .iter()
            .any(|f| f.file == "crates/core/src/instrument.rs"),
        "instrument.rs reads clocks legitimately; the taint is flagged \
         at the trainer.rs sink instead"
    );
}

#[test]
fn nothing_but_the_seeded_violations_fires() {
    let findings = tree_findings();
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    assert_eq!(
        rules,
        [
            "arena-take-balance",
            "conc-guard-across-blocking",
            "conc-lock-order",
            "det-taint",
        ],
        "all findings: {findings:?}"
    );
}
