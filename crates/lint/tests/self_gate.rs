//! The linter gates its own workspace: scanning the repository against
//! the committed `lint_baseline.json` must produce zero new findings.
//! This is the same check CI runs via the binary, kept as a test so
//! `cargo test` alone catches a regression.

use std::path::PathBuf;

use cascade_lint::{find_root, scan_workspace, Baseline, RunSummary};

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(&here).expect("lint crate lives inside the workspace");
    let (findings, suppressed, files) =
        scan_workspace(&root).expect("workspace sources are readable");

    let baseline_path = root.join("lint_baseline.json");
    let text = std::fs::read_to_string(&baseline_path)
        .expect("lint_baseline.json is committed at the workspace root");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");

    let summary = RunSummary::new(baseline.diff(&findings), suppressed, files);
    assert!(
        summary.clean(),
        "new lint findings not in lint_baseline.json:\n{}",
        summary.render_text()
    );
    assert!(
        summary.stale.is_empty(),
        "stale baseline entries — regenerate with --write-baseline:\n{}",
        summary.render_text()
    );
}

#[test]
fn two_scans_render_byte_identical_baselines() {
    // The baseline file is reviewed as a diff: findings are sorted by
    // (path, line, col, rule) before rendering, so two runs over the
    // same tree — including the interprocedural passes, whose findings
    // come out of set-ordered fixpoints — must agree byte for byte.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(&here).expect("lint crate lives inside the workspace");
    let (first, _, _) = scan_workspace(&root).expect("workspace sources are readable");
    let (second, _, _) = scan_workspace(&root).expect("workspace sources are readable");
    assert_eq!(first, second, "finding order must not vary across runs");
    assert_eq!(
        Baseline::from_findings(&first).render(),
        Baseline::from_findings(&second).render(),
        "rendered baselines must be byte-identical across runs"
    );
}

#[test]
fn suppressions_in_the_workspace_carry_reasons() {
    // Every suppression that silences a finding parsed with a valid
    // reason (bare ones are findings and would fail the gate above);
    // this pins the expectation that the count stays meaningful.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(&here).expect("lint crate lives inside the workspace");
    let (_, suppressed, _) = scan_workspace(&root).expect("workspace sources are readable");
    assert!(
        suppressed > 0,
        "the workspace documents its telemetry/index-map exceptions via suppressions"
    );
}
