//@ path: crates/scenario/src/report.rs
// The report module is the scenario crate's designated I/O escape:
// recipe loading, report writing, and the /proc/self/status read.
use std::fs;

pub fn read_proc_status() -> Option<String> {
    fs::read_to_string("/proc/self/status").ok()
}
