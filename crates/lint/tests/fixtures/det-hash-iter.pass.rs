//@ path: crates/core/src/batching.rs
use std::collections::BTreeSet;

pub fn dedup(ids: &[u64]) -> Vec<u64> {
    let mut seen = BTreeSet::new();
    ids.iter().copied().filter(|id| seen.insert(*id)).collect()
}
