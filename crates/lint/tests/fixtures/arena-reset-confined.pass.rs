//@ path: crates/core/src/trainer.rs
// The trainer's batch loop is a designated reset site: the previous
// batch's graph has been dropped before the boundary trim runs.
pub fn after_batch() {
    cascade_tensor::arena::reset();
}
