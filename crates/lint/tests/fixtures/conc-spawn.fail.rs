//@ path: crates/exec/src/worker.rs
//@ expect: conc-spawn
pub fn detach() {
    std::thread::spawn(|| {});
}
