//@ path: crates/core/src/abs.rs
//@ expect: policy-bare-suppression
//@ expect: panic-unwrap
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap() // cascade-lint: allow(panic-unwrap)
}
