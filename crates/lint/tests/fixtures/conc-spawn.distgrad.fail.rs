//@ path: crates/dist/src/grad.rs
//@ expect: conc-spawn
// The gradient exchange must stay synchronous: a detached reducer
// thread escapes the barrier protocol that makes the reduction ordered.
pub fn async_reduce() {
    std::thread::spawn(|| {});
}
