//@ path: crates/serve/src/engine.rs
//@ expect: conc-lock-order
//@ expect: conc-lock-order
use std::sync::Mutex;

pub struct Engine {
    wal: Mutex<u64>,
    snapshot: Mutex<u64>,
}

impl Engine {
    // Holds `wal`, then acquires `snapshot` *inside the callee*: the
    // cycle only exists through the call edge.
    pub fn ingest(&self) {
        let wal = self.wal.lock().expect("engine locks are never poisoned");
        self.publish();
        drop(wal);
    }

    fn publish(&self) {
        let snap = self.snapshot.lock().expect("engine locks are never poisoned");
        drop(snap);
    }

    pub fn restore(&self) {
        let snap = self.snapshot.lock().expect("engine locks are never poisoned");
        let wal = self.wal.lock().expect("engine locks are never poisoned");
        drop(wal);
        drop(snap);
    }
}
