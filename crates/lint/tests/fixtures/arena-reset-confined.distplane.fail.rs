//@ path: crates/dist/src/plane.rs
//@ expect: arena-reset-confined
// The shared plane is called from every worker thread; a reset here
// would trim another worker's thread-local pool mid-batch.
pub fn writeback_and_trim() {
    cascade_tensor::arena::reset();
}
