//@ path: crates/tgraph/src/dataset.rs
// The designated I/O modules (tgraph's CSV ingest, models' parameter
// checkpointing) are allowlisted; everywhere else in scope, event data
// must flow through cascade-store instead of ad-hoc std::fs calls.
use std::fs;

pub fn read_csv(path: &std::path::Path) -> std::io::Result<String> {
    fs::read_to_string(path)
}
