//@ path: crates/dist/src/grad.rs
//@ expect: arena-reset-confined
// Trimming the arena mid-reduction would recycle buffers the current
// round's backward graph still owns; resets belong in the worker batch
// loop (runtime.rs), after apply + barrier.
use cascade_tensor::arena;

pub fn reduce_and_trim() {
    arena::reset();
}
