//@ path: crates/nn/src/layers.rs
//@ expect: policy-clippy-allow

#[allow(clippy::too_many_arguments)]
pub fn forward(a: f32, b: f32, c: f32, d: f32, e: f32, f: f32, g: f32, h: f32) -> f32 {
    a + b + c + d + e + f + g + h
}
