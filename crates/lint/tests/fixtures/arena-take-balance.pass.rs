//@ path: crates/tensor/src/ops/scale.rs
use crate::arena;

// Balanced: the buffer is recycled on the main path and before the
// early return.
pub fn sum_scaled(v: &[f32], k: f32) -> f32 {
    let out = arena::take_copy(v);
    if v.is_empty() {
        arena::recycle(out);
        return 0.0;
    }
    let mut acc = 0.0f32;
    for x in out.iter() {
        acc += x * k;
    }
    arena::recycle(out);
    acc
}
