//@ path: crates/dist/src/runtime.rs
// The dist runtime module owns the worker thread lifecycles and is
// allowlisted, mirroring exec/pipeline.rs and serve/server.rs.
pub fn worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
