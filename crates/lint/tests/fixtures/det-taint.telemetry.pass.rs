//@ path: crates/core/src/trainer.rs
use std::time::Instant;

pub struct Trainer {
    report: Report,
}

impl Trainer {
    // Wall-clock readings that only fill reports never reach a state
    // mutation: suppressed det-wallclock, and no det-taint.
    pub fn record(&mut self) {
        // cascade-lint: allow(det-wallclock): stage timing lands in TrainReport only, never in schedules
        let t = Instant::now();
        self.report.scan_secs = t.elapsed().as_secs_f64();
    }
}
