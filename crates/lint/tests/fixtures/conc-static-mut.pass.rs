//@ path: crates/util/src/rng.rs
use std::sync::atomic::AtomicU64;

static COUNTER: AtomicU64 = AtomicU64::new(0);
