//@ path: crates/dist/src/tcp.rs
//@ expect: io-fs-confined
//@ expect: io-fs-confined
use std::fs;

// The transport moves bytes over sockets; spooling frames to ad-hoc
// files scatters untyped I/O errors outside the audited storage layer.
pub fn spool_frame(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    fs::read(path)
}
