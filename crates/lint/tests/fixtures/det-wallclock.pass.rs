//@ path: crates/core/src/instrument.rs
// The telemetry module is allowlisted: timings here only fill reports.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
