//@ path: crates/serve/src/engine.rs
//@ expect: conc-guard-across-blocking
use std::sync::RwLock;
use std::thread::JoinHandle;

pub fn drain(snapshot: &RwLock<Vec<u64>>, worker: JoinHandle<()>) {
    let snap = snapshot.read().expect("serving threads never poison this lock");
    worker.join().ok();
    drop(snap);
}
