//@ path: crates/scenario/src/runner.rs
//@ expect: det-wallclock
use std::time::Instant;

pub fn phase_budget_events(rate_hint: f64) -> usize {
    // Deriving the phase length from a clock reading makes the recipe
    // irreproducible across hosts — exactly what the scope forbids.
    let jitter = Instant::now().elapsed().as_nanos() as f64;
    (rate_hint + jitter) as usize
}
