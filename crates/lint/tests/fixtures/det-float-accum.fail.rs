//@ path: crates/nn/src/loss.rs
//@ expect: det-hash-iter
//@ expect: det-float-accum
pub fn total() -> f32 {
    let s: f32 = HashMap::from([(1u32, 1.0f32)]).values().sum();
    s
}
