//@ path: crates/dist/src/grad.rs
//@ expect: det-taint
use std::time::Instant;

pub struct GradExchange {
    sinks: Sinks,
}

impl GradExchange {
    fn round_secs(&self) -> f64 {
        // cascade-lint: allow(det-wallclock): round timing lands in DistReport; det-taint still guards state flows
        let t = Instant::now();
        t.elapsed().as_secs_f64()
    }

    // The suppressed telemetry read leaks into the gradient exchange —
    // a wall-clock-dependent reduction scale. det-taint flags the
    // all-reduce sink even though the clock read itself is allowlisted.
    pub fn exchange(&mut self) {
        let scale = self.round_secs();
        self.sinks.all_reduce(scale);
    }
}
