//@ path: crates/nn/src/loss.rs
pub fn total(per_batch: &[f32]) -> f32 {
    per_batch.iter().sum()
}
