//@ path: crates/dist/src/tcp.rs
// Sequential socket plumbing needs no threads: the leader drains
// follower round frames in worker-index order on the caller's thread.
pub fn drain_rounds(frames: &[Vec<u8>]) -> usize {
    let mut total = 0;
    for frame in frames {
        total += frame.len();
    }
    total
}
