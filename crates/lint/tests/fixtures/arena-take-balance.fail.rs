//@ path: crates/tensor/src/ops/scale.rs
//@ expect: arena-take-balance
use crate::arena;

// The taken buffer is only ever borrowed; nothing recycles or returns
// it, so it silently leaks from the recycling pool at scope end.
pub fn sum_scaled(v: &[f32], k: f32) -> f32 {
    let out = arena::take_copy(v);
    let mut acc = 0.0f32;
    for x in out.iter() {
        acc += x * k;
    }
    acc
}
