//@ path: crates/dist/src/runtime.rs
// The dist worker loop is a designated reset site: each worker trims
// its own thread-local pool at the round boundary, after the round's
// graph has been dropped and the apply barrier has passed.
pub fn after_round() {
    cascade_tensor::arena::reset();
}
