//@ path: crates/core/src/trainer.rs
//@ expect: det-wallclock
use std::time::Instant;

pub fn epoch_seed() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
