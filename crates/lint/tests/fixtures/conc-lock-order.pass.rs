//@ path: crates/exec/src/pipeline.rs
use std::sync::Mutex;

pub struct Stages {
    scan: Mutex<u64>,
    compute: Mutex<u64>,
}

impl Stages {
    // Both paths agree on the global order scan -> compute.
    pub fn forward(&self) {
        let scan = self.scan.lock().expect("stage locks are never poisoned");
        let compute = self.compute.lock().expect("stage locks are never poisoned");
        drop(compute);
        drop(scan);
    }

    pub fn backward(&self) {
        let scan = self.scan.lock().expect("stage locks are never poisoned");
        let compute = self.compute.lock().expect("stage locks are never poisoned");
        drop(compute);
        drop(scan);
    }
}
