//@ path: crates/serve/src/engine.rs
//@ expect: io-fs-confined
//@ expect: io-fs-confined
use std::fs;

pub fn dump_snapshot(bytes: &[u8]) -> std::io::Result<()> {
    fs::write("/tmp/serve_state.bin", bytes)
}
