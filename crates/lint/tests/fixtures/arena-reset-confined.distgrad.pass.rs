//@ path: crates/dist/src/grad.rs
// The gradient exchange works on owned buffers and leaves arena
// lifecycle to the worker loop in runtime.rs.
pub fn ordered_sum(slots: &[Vec<f32>], out: &mut [f32]) {
    for slot in slots {
        for (o, v) in out.iter_mut().zip(slot.iter()) {
            *o += *v;
        }
    }
}
