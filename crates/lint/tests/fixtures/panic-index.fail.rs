//@ path: crates/exec/src/plan.rs
//@ expect: panic-index
pub fn pick(plans: &[u32], i: usize) -> u32 {
    plans[i]
}
