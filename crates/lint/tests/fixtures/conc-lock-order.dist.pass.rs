//@ path: crates/dist/src/plane.rs
use std::sync::RwLock;

pub struct SharedPlane {
    shard_a: RwLock<Vec<f32>>,
    shard_b: RwLock<Vec<f32>>,
}

impl SharedPlane {
    // The shared-plane idiom: locks are taken one at a time and dropped
    // before the next acquisition, so no held -> acquired edge exists.
    pub fn gather(&self) -> f32 {
        let first = {
            let a = self.shard_a.read().expect("shard locks are never poisoned");
            a.first().copied().unwrap_or(0.0)
        };
        let second = {
            let b = self.shard_b.read().expect("shard locks are never poisoned");
            b.first().copied().unwrap_or(0.0)
        };
        first + second
    }

    pub fn writeback(&self, value: f32) {
        {
            let mut a = self.shard_a.write().expect("shard locks are never poisoned");
            a.push(value);
        }
        let mut b = self.shard_b.write().expect("shard locks are never poisoned");
        b.push(value);
    }
}
