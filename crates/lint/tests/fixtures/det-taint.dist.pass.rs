//@ path: crates/dist/src/grad.rs
pub struct GradExchange {
    sinks: Sinks,
}

impl GradExchange {
    // Worker-index-derived reduction scales are deterministic: the same
    // (seed, worker count) always produces the same value, so the
    // all-reduce sink sees no tainted input.
    pub fn exchange(&mut self, active_workers: usize) {
        let scale = 1.0 / active_workers as f64;
        self.sinks.all_reduce(scale);
    }
}
