//@ path: crates/dist/src/plane.rs
//@ expect: conc-lock-order
//@ expect: conc-lock-order
use std::sync::RwLock;

pub struct SharedPlane {
    shard_a: RwLock<Vec<f32>>,
    shard_b: RwLock<Vec<f32>>,
}

impl SharedPlane {
    // Migration nests the shard locks a -> b …
    pub fn migrate(&self) {
        let a = self.shard_a.write().expect("shard locks are never poisoned");
        let b = self.shard_b.write().expect("shard locks are never poisoned");
        drop(b);
        drop(a);
    }

    // … while rebalance nests them b -> a: first interleaving deadlocks.
    pub fn rebalance(&self) {
        let b = self.shard_b.write().expect("shard locks are never poisoned");
        let a = self.shard_a.write().expect("shard locks are never poisoned");
        drop(a);
        drop(b);
    }
}
