//@ path: crates/exec/src/pipeline.rs
// The pipeline module owns thread lifecycles and is allowlisted.
pub fn scout() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
