//@ path: crates/exec/src/plan.rs
pub fn pick(plans: &[u32], i: usize) -> Option<u32> {
    // `.get()` and range slicing are both fine; only `expr[i]` panics.
    let window = &plans[0..plans.len().min(8)];
    window.get(i).copied()
}
