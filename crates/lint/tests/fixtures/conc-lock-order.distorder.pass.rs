//@ path: crates/dist/src/runtime.rs
use std::sync::Mutex;

pub struct Runtime {
    shard_state: Mutex<u64>,
    grad_slots: Mutex<u64>,
}

impl Runtime {
    // Both paths honor the single global order shard_state -> grad_slots,
    // even when the inner acquisition is hidden behind a call.
    pub fn apply_round(&self) {
        let shard = self
            .shard_state
            .lock()
            .expect("dist locks are never poisoned");
        self.post_grads();
        drop(shard);
    }

    fn post_grads(&self) {
        let slots = self
            .grad_slots
            .lock()
            .expect("dist locks are never poisoned");
        drop(slots);
    }

    pub fn reduce(&self) {
        let shard = self
            .shard_state
            .lock()
            .expect("dist locks are never poisoned");
        let slots = self
            .grad_slots
            .lock()
            .expect("dist locks are never poisoned");
        drop(slots);
        drop(shard);
    }
}
