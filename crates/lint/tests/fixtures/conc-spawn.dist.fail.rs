//@ path: crates/dist/src/tcp.rs
//@ expect: conc-spawn
// The TCP transport is codec + socket plumbing; per-connection threads
// belong in runtime.rs where the join/shutdown protocol lives.
pub fn background_reader() {
    std::thread::spawn(|| {});
}
