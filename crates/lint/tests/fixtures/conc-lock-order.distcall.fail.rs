//@ path: crates/dist/src/runtime.rs
//@ expect: conc-lock-order
//@ expect: conc-lock-order
use std::sync::Mutex;

pub struct Runtime {
    shard_state: Mutex<u64>,
    grad_slots: Mutex<u64>,
}

impl Runtime {
    // Holds the shard lock, then acquires the gradient slots *inside the
    // callee*: the cycle only exists through the call-graph edge.
    pub fn apply_round(&self) {
        let shard = self
            .shard_state
            .lock()
            .expect("dist locks are never poisoned");
        self.post_grads();
        drop(shard);
    }

    fn post_grads(&self) {
        let slots = self
            .grad_slots
            .lock()
            .expect("dist locks are never poisoned");
        drop(slots);
    }

    pub fn reduce(&self) {
        let slots = self
            .grad_slots
            .lock()
            .expect("dist locks are never poisoned");
        let shard = self
            .shard_state
            .lock()
            .expect("dist locks are never poisoned");
        drop(shard);
        drop(slots);
    }
}
