//@ path: crates/models/src/memory.rs
pub fn last_update(times: &[f64]) -> f64 {
    times
        .last()
        .copied()
        .expect("memory tables are created with one row per node")
}
