//@ path: crates/dist/src/stats.rs
use std::time::Instant;

pub struct RoundStats {
    report: Report,
}

impl RoundStats {
    // The dist telemetry module is the one allowlisted clock reader in
    // the crate; its readings fill DistReport and never reach a shard
    // write or the all-reduce.
    pub fn record_round(&mut self) {
        let t = Instant::now();
        self.report.round_secs = t.elapsed().as_secs_f64();
    }
}
