//@ path: crates/scenario/src/gen.rs
//@ expect: io-fs-confined
//@ expect: io-fs-confined
use std::fs;

pub fn dump_phase_debug(bytes: &[u8]) -> std::io::Result<()> {
    // The generator must stream through cascade-store; ad-hoc fs access
    // belongs in scenario/src/report.rs.
    fs::write("/tmp/phase_debug.bin", bytes)
}
