//@ path: crates/dist/src/round.rs
//@ expect: io-fs-confined
//@ expect: io-fs-confined
use std::fs;

// Dist has no designated I/O module: checkpoints go through
// models/checkpoint.rs and event data through cascade-store.
pub fn dump_round(bytes: &[u8]) -> std::io::Result<()> {
    fs::write("/tmp/dist_round.bin", bytes)
}
