//@ path: crates/tensor/src/ops/add.rs
use crate::arena;
use crate::Tensor;

// Moving the buffer out — into a Tensor or back to the caller — hands
// off ownership; the receiver recycles it when the graph drops.
pub fn add_scaled(v: &[f32], k: f32) -> Tensor {
    let mut out = arena::take_copy(v);
    for x in out.iter_mut() {
        *x += k;
    }
    Tensor::from_vec(out)
}

pub fn zeros(n: usize) -> Vec<f32> {
    let buf = arena::take_zeroed(n);
    buf
}
