//@ path: crates/dist/src/plane.rs
//@ expect: det-hash-iter
//@ expect: det-taint
pub struct ShardOwner {
    plane: Plane,
}

impl ShardOwner {
    // `value` flows straight into a shard memory write: this parameter
    // position is a sink (receiver `plane`, sink fn `memory_write`).
    fn write_state(&mut self, value: f32) {
        self.plane.memory_write(0, value);
    }

    // Hash-iteration order decides which value lands in the shard's node
    // memory; the taint crosses the helper boundary interprocedurally.
    pub fn refresh(&mut self) {
        let pending = std::collections::HashMap::from([(1u64, 0.5f32)]);
        let first = pending.values().next().copied().unwrap_or(0.0);
        self.write_state(first);
    }
}
