//@ path: crates/serve/src/persist.rs
// The serve persistence module owns WAL + snapshot file handling and is
// a designated I/O module; everywhere else in the crate, durable state
// must flow through it.
use std::fs;

pub fn snapshot_len(path: &std::path::Path) -> std::io::Result<u64> {
    Ok(fs::metadata(path)?.len())
}
