//@ path: crates/serve/src/engine.rs
use std::sync::RwLock;
use std::thread::JoinHandle;

pub fn drain(snapshot: &RwLock<Vec<u64>>, worker: JoinHandle<()>) {
    let len = {
        let snap = snapshot.read().expect("serving threads never poison this lock");
        snap.len()
    };
    worker.join().ok();
    let _ = len;
}
