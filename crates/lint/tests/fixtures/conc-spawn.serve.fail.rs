//@ path: crates/serve/src/engine.rs
//@ expect: conc-spawn
pub fn background_apply() {
    std::thread::spawn(|| {});
}
