//@ path: crates/tensor/src/ops/norm.rs
//@ expect: arena-take-balance
use crate::arena;

// The early return skips the recycle: the buffer leaks on exactly the
// path a length-zero input takes.
pub fn norm(v: &[f32]) -> f32 {
    let buf = arena::take_copy(v);
    if v.is_empty() {
        return 0.0;
    }
    let total: f32 = buf.iter().map(|x| x * x).sum();
    arena::recycle(buf);
    total.sqrt()
}
