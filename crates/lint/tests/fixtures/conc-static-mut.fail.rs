//@ path: crates/util/src/rng.rs
//@ expect: conc-static-mut
static mut COUNTER: u64 = 0;
