//@ path: crates/dist/src/tcp.rs
// Sockets are the transport's whole job; std::net is fine where
// std::fs is not.
use std::io::Write;
use std::net::TcpStream;

pub fn send_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)
}
