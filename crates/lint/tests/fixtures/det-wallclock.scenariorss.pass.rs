//@ path: crates/scenario/src/rss.rs
// The scenario RSS/stopwatch sampler is allowlisted telemetry: its
// readings land in scenario reports, never in the generated stream.
use std::time::Instant;

pub struct Stopwatch(Instant);

pub fn start() -> Stopwatch {
    Stopwatch(Instant::now())
}
