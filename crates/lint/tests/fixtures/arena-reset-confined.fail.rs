//@ path: crates/nn/src/attention.rs
//@ expect: arena-reset-confined
// A layer resetting the arena mid-forward would trim the pool while the
// current batch's graph still owns recycled buffers.
use cascade_tensor::arena;

pub fn forward_and_trim() {
    arena::reset();
}
