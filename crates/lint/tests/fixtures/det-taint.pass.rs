//@ path: crates/core/src/trainer.rs
pub struct Trainer {
    opt: Opt,
}

impl Trainer {
    // Config-derived values into the optimizer are deterministic.
    pub fn tune(&mut self, lr: f64) {
        let scaled = lr * 0.5;
        self.opt.step(scaled);
    }
}
