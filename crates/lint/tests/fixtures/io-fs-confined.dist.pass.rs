//@ path: crates/dist/src/round.rs
// Durable state flows through the designated modules: the round codec
// only encodes and decodes in-memory byte frames.
pub fn encode_round(grads: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + grads.len() * 4);
    out.extend_from_slice(&(grads.len() as u32).to_le_bytes());
    for g in grads {
        out.extend_from_slice(&g.to_le_bytes());
    }
    out
}
