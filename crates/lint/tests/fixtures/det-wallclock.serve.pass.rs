//@ path: crates/serve/src/stats.rs
// The serve telemetry module is allowlisted: timings here only fill the
// /stats latency histograms, never model state.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
