//@ path: crates/serve/src/server.rs
// The server module owns the accept/worker/ingest thread lifecycles and
// is allowlisted, mirroring exec/pipeline.rs.
pub fn worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
