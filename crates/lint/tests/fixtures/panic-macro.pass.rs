//@ path: crates/exec/src/worker.rs
pub fn stage_name(stage: u8) -> Option<&'static str> {
    match stage {
        0 => Some("scan"),
        1 => Some("compute"),
        2 => Some("update"),
        _ => None,
    }
}
