//@ path: crates/serve/src/engine.rs
//@ expect: det-wallclock
use std::time::Instant;

pub fn ingest_deadline() -> u128 {
    Instant::now().elapsed().as_micros()
}
