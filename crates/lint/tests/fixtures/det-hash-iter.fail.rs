//@ path: crates/core/src/batching.rs
//@ expect: det-hash-iter
//@ expect: det-hash-iter
use std::collections::HashSet;

pub fn dedup(ids: &[u64]) -> Vec<u64> {
    let mut seen = HashSet::new();
    ids.iter().copied().filter(|id| seen.insert(*id)).collect()
}
