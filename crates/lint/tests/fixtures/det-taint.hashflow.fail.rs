//@ path: crates/models/src/model.rs
//@ expect: det-hash-iter
//@ expect: det-taint
pub struct Model {
    memory: Memory,
}

impl Model {
    // `value` flows straight into a memory write: this parameter
    // position is a sink.
    fn write_state(&mut self, value: f32) {
        self.memory.set(0, value);
    }

    // Hash-iteration order decides which value lands in memory; the
    // taint crosses the helper boundary interprocedurally.
    pub fn refresh(&mut self) {
        let cache = std::collections::HashMap::from([(1u64, 0.5f32)]);
        let first = cache.values().next().copied().unwrap_or(0.0);
        self.write_state(first);
    }
}
