//@ path: crates/exec/src/worker.rs
//@ expect: panic-macro
pub fn stage_name(stage: u8) -> &'static str {
    match stage {
        0 => "scan",
        1 => "compute",
        2 => "update",
        _ => unreachable!(),
    }
}
