//@ path: crates/core/src/abs.rs
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap() // cascade-lint: allow(panic-unwrap): callers pass the non-empty batch window built above
}
