//@ path: crates/exec/src/pipeline.rs
//@ expect: conc-guard-across-blocking
use std::sync::mpsc::SyncSender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u64>, tx: &SyncSender<u64>) {
    let guard = state.lock().expect("pipeline threads never poison this lock");
    tx.send(*guard).ok();
}
