//@ path: crates/core/src/scheduler.rs
//@ expect: io-fs-confined
//@ expect: io-fs-confined
use std::fs;

pub fn dump_table(bytes: &[u8]) -> std::io::Result<()> {
    fs::write("/tmp/table.bin", bytes)
}
