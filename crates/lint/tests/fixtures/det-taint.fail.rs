//@ path: crates/core/src/trainer.rs
//@ expect: det-taint
use std::time::Instant;

pub struct Trainer {
    opt: Opt,
}

impl Trainer {
    fn elapsed_secs(&self) -> f64 {
        // cascade-lint: allow(det-wallclock): timing lands in reports; det-taint still guards state flows
        let t = Instant::now();
        t.elapsed().as_secs_f64()
    }

    // The suppressed telemetry read leaks into the optimizer step — a
    // wall-clock-dependent parameter update. det-taint flags the sink
    // call even though the clock read itself was allowlisted.
    pub fn tune(&mut self) {
        let lr = self.elapsed_secs();
        self.opt.step(lr);
    }
}
