//@ path: crates/serve/src/engine.rs
use std::sync::Mutex;

pub struct Engine {
    wal: Mutex<u64>,
    snapshot: Mutex<u64>,
    stats: Mutex<u64>,
    conns: Mutex<u64>,
}

impl Engine {
    // Nested acquisitions on *disjoint* lock pairs never cycle, even
    // though each pair has its own internal order.
    pub fn ingest(&self) {
        let wal = self.wal.lock().expect("engine locks are never poisoned");
        let snap = self.snapshot.lock().expect("engine locks are never poisoned");
        drop(snap);
        drop(wal);
    }

    pub fn report(&self) {
        let conns = self.conns.lock().expect("engine locks are never poisoned");
        let stats = self.stats.lock().expect("engine locks are never poisoned");
        drop(stats);
        drop(conns);
    }
}
