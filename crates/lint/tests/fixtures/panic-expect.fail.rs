//@ path: crates/models/src/memory.rs
//@ expect: panic-expect
pub fn last_update(times: &[f64]) -> f64 {
    times.last().copied().expect("boom")
}
