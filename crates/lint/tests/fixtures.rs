//! Fixture-driven rule tests: every rule in the registry has at least
//! one failing fixture (the rule fires, with the exact expected finding
//! set) and one passing fixture (the idiomatic alternative is clean).
//!
//! Fixture format — `crates/lint/tests/fixtures/<rule>.{fail,pass}.{rs,toml}`:
//!
//! ```text
//! //@ path: crates/exec/src/worker.rs    <- virtual workspace path
//! //@ expect: panic-unwrap               <- one line per expected finding
//! ```
//!
//! (`#@` headers in TOML fixtures.) The directory is excluded from the
//! workspace walk, so the deliberate violations never reach the gate.

use std::collections::BTreeSet;
use std::path::PathBuf;

use cascade_lint::{check_manifest, check_source, RULES};

struct Fixture {
    name: String,
    virtual_path: String,
    expect: Vec<String>,
    body: String,
    is_fail: bool,
    is_toml: bool,
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory ships with the crate")
        .map(|e| e.expect("fixture dir entries are readable").path())
        .collect();
    names.sort();
    let mut fixtures = Vec::new();
    for path in names {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture names are UTF-8")
            .to_string();
        let text = std::fs::read_to_string(&path)
            .expect("fixture files ship with the crate and are UTF-8");
        let marker = if name.ends_with(".toml") {
            "#@ "
        } else {
            "//@ "
        };
        let mut virtual_path = None;
        let mut expect = Vec::new();
        for line in text.lines() {
            let Some(rest) = line.strip_prefix(marker) else {
                continue;
            };
            if let Some(p) = rest.strip_prefix("path:") {
                virtual_path = Some(p.trim().to_string());
            } else if let Some(r) = rest.strip_prefix("expect:") {
                expect.push(r.trim().to_string());
            } else {
                panic!("{}: unknown fixture header `{}`", name, line);
            }
        }
        fixtures.push(Fixture {
            virtual_path: virtual_path
                .unwrap_or_else(|| panic!("{}: missing `{}path:` header", name, marker)),
            expect,
            body: text,
            is_fail: name.contains(".fail."),
            is_toml: name.ends_with(".toml"),
            name,
        });
    }
    fixtures
}

fn findings_of(f: &Fixture) -> Vec<String> {
    let mut rules: Vec<String> = if f.is_toml {
        check_manifest(&f.virtual_path, &f.body)
            .iter()
            .map(|x| x.rule.to_string())
            .collect()
    } else {
        check_source(&f.virtual_path, &f.body)
            .findings
            .iter()
            .map(|x| x.rule.to_string())
            .collect()
    };
    rules.sort();
    rules
}

#[test]
fn fail_fixtures_fire_exactly_their_expected_findings() {
    for f in load_fixtures().iter().filter(|f| f.is_fail) {
        let mut expected = f.expect.clone();
        expected.sort();
        assert!(
            !expected.is_empty(),
            "{}: fail fixture needs expect headers",
            f.name
        );
        assert_eq!(
            findings_of(f),
            expected,
            "{} (as {}) fired the wrong finding set",
            f.name,
            f.virtual_path
        );
    }
}

#[test]
fn pass_fixtures_are_clean() {
    for f in load_fixtures().iter().filter(|f| !f.is_fail) {
        assert!(
            f.expect.is_empty(),
            "{}: pass fixture must not expect findings",
            f.name
        );
        assert_eq!(
            findings_of(f),
            Vec::<String>::new(),
            "{} (as {}) should be clean",
            f.name,
            f.virtual_path
        );
    }
}

#[test]
fn every_rule_has_a_failing_and_a_passing_fixture() {
    let fixtures = load_fixtures();
    let covered = |fail: bool| -> BTreeSet<&str> {
        fixtures
            .iter()
            .filter(|f| f.is_fail == fail)
            .map(|f| {
                let stem = f.name.split('.').next().unwrap_or("");
                stem
            })
            .collect()
    };
    let failing = covered(true);
    let passing = covered(false);
    for spec in RULES {
        assert!(
            failing.contains(spec.id),
            "rule {} has no failing fixture",
            spec.id
        );
        assert!(
            passing.contains(spec.id),
            "rule {} has no passing fixture",
            spec.id
        );
    }
}
