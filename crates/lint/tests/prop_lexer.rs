//! Seeded property tests for the lexer (satellite 6): on adversarial
//! input assembled from the constructs the lexer special-cases, it must
//! never panic, spans must be monotone, and every token's span must
//! point at the exact bytes of its text.

use cascade_lint::{lex, TokKind};
use cascade_util::{check, prop_assert, Gen};

/// Fragments biased toward lexer edge cases: quote/comment openers
/// without closers, raw-string guards, lifetimes vs chars, range
/// punctuation inside numbers, and multi-byte UTF-8.
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "x",
    "_ident",
    "r#match",
    "0",
    "1_000",
    "0x1f",
    "3.25",
    "1e9",
    "0..n",
    "..=",
    "\"str\"",
    "\"esc \\\" quote\"",
    "\"",
    "'c'",
    "'\\n'",
    "'a",
    "'static",
    "b'x'",
    "r\"raw\"",
    "r#\"guarded \" inner\"#",
    "r#\"",
    "br#\"bytes\"#",
    "// line comment",
    "//",
    "/* block */",
    "/* nested /* deep */ still */",
    "/*",
    "*/",
    "/*!",
    "///",
    "->",
    "=>",
    "::",
    ";",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "#",
    "!",
    ".",
    "..",
    "\\",
    "\n",
    "\t",
    " ",
    "é",
    "αβ",
    "🦀",
    "\u{0}",
];

fn random_source(g: &mut Gen) -> String {
    let pieces = g.usize_in(0..40);
    let mut src = String::new();
    for _ in 0..pieces {
        src.push_str(FRAGMENTS[g.usize_in(0..FRAGMENTS.len())]);
        if g.usize_in(0..4) == 0 {
            src.push(' ');
        }
    }
    src
}

#[test]
fn lexer_never_panics_and_spans_are_exact() {
    check("lexer_total_on_adversarial_input", |g| {
        let src = random_source(g);
        // `lex` returning at all is the no-panic half of the property
        // (a panic would abort this test case).
        let toks = lex(&src);
        let bytes = src.as_bytes();
        let mut prev_end = 0usize;
        let mut prev_line_col = (0u32, 0u32);
        for t in &toks {
            let start = t.offset;
            let end = start + t.text.len();
            prop_assert!(
                end <= bytes.len(),
                "token `{}` span {}..{} escapes source of {} bytes",
                t.text.escape_debug(),
                start,
                end,
                bytes.len()
            );
            prop_assert!(
                &bytes[start..end] == t.text.as_bytes(),
                "token text `{}` disagrees with source at offset {}",
                t.text.escape_debug(),
                start
            );
            // Monotone, non-overlapping spans in reading order.
            prop_assert!(
                start >= prev_end,
                "token at offset {} overlaps the previous token ending at {}",
                start,
                prev_end
            );
            prop_assert!(
                (t.line, t.col) > prev_line_col,
                "line/col {:?} did not advance past {:?}",
                (t.line, t.col),
                prev_line_col
            );
            prop_assert!(t.line >= 1 && t.col >= 1, "line/col are 1-based");
            prev_end = end;
            prev_line_col = (t.line, t.col);
        }
        Ok(())
    });
}

#[test]
fn lexing_is_deterministic() {
    check("lexer_same_input_same_tokens", |g| {
        let src = random_source(g);
        let a = lex(&src);
        let b = lex(&src);
        prop_assert!(a.len() == b.len(), "token counts diverged");
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(
                x.kind == y.kind && x.text == y.text && x.offset == y.offset,
                "token streams diverged at offset {}",
                x.offset
            );
        }
        Ok(())
    });
}

#[test]
fn every_non_whitespace_byte_is_inside_some_token_or_skipped_legally() {
    // Weaker coverage property: outside of tokens the lexer only ever
    // skips whitespace *or* text swallowed by an unterminated
    // string/comment, which by construction runs to end of input.
    check("lexer_gap_bytes_are_whitespace", |g| {
        let src = random_source(g);
        let toks = lex(&src);
        let mut cursor = 0usize;
        let bytes = src.as_bytes();
        for t in &toks {
            for &b in &bytes[cursor..t.offset] {
                prop_assert!(
                    b.is_ascii_whitespace(),
                    "byte {:#04x} between tokens is not whitespace",
                    b
                );
            }
            cursor = t.offset + t.text.len();
        }
        Ok(())
    });
}

#[test]
fn comment_tokens_round_trip_kind() {
    check("lexer_kind_text_agreement", |g| {
        let src = random_source(g);
        for t in lex(&src) {
            match t.kind {
                TokKind::Comment => prop_assert!(
                    t.text.starts_with("//") || t.text.starts_with("/*"),
                    "comment token `{}` lacks a comment opener",
                    t.text.escape_debug()
                ),
                TokKind::Str => prop_assert!(
                    t.text.contains('"'),
                    "string token `{}` lacks a quote",
                    t.text.escape_debug()
                ),
                _ => {}
            }
        }
        Ok(())
    });
}
