//! Rendering: human-readable text (with the per-rule summary table CI
//! prints on failure) and machine-readable JSON findings.

use cascade_util::Json;

use crate::baseline::Diff;
use crate::engine::Finding;
use crate::rules::RULES;

/// Everything one lint run produced, ready to render.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Findings that fail the gate (new vs the baseline).
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Findings silenced by in-source suppressions.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Stale baseline classes: `(rule, file, surplus count)`.
    pub stale: Vec<(String, String, usize)>,
}

impl RunSummary {
    /// Assembles a summary from the baseline diff and scan counters.
    pub fn new(diff: Diff, suppressed: usize, files_scanned: usize) -> RunSummary {
        RunSummary {
            new: diff.new,
            baselined: diff.baselined,
            suppressed,
            files_scanned,
            stale: diff
                .stale
                .into_iter()
                .map(|e| (e.rule, e.file, e.count))
                .collect(),
        }
    }

    /// Whether the gate passes.
    pub fn clean(&self) -> bool {
        self.new.is_empty()
    }

    /// The text report: one line per new finding with its rationale,
    /// then the per-rule summary table, then stale-baseline notes.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.new {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    > {}\n",
                f.file, f.line, f.col, f.rule, f.snippet, f.why
            ));
        }
        if !self.new.is_empty() {
            out.push('\n');
            out.push_str(&self.rule_table());
            out.push('\n');
        }
        for (rule, file, count) in &self.stale {
            out.push_str(&format!(
                "note: baseline entry no longer matches anything: {} in {} (surplus {}) — \
                 re-run with --write-baseline to tighten\n",
                rule, file, count
            ));
        }
        out.push_str(&format!(
            "cascade-lint: {} file(s) scanned, {} new finding(s), {} baselined, {} suppressed\n",
            self.files_scanned,
            self.new.len(),
            self.baselined,
            self.suppressed
        ));
        out
    }

    /// The per-rule findings summary table.
    fn rule_table(&self) -> String {
        let mut rows: Vec<(&str, usize)> = Vec::new();
        for spec in RULES {
            let n = self.new.iter().filter(|f| f.rule == spec.id).count();
            if n > 0 {
                rows.push((spec.id, n));
            }
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let width = rows.iter().map(|(r, _)| r.len()).max().unwrap_or(4).max(4);
        let mut out = format!("  {:<width$}  new\n  {:-<width$}  ---\n", "rule", "");
        for (rule, n) in rows {
            out.push_str(&format!("  {:<width$}  {:>3}\n", rule, n));
        }
        out
    }

    /// The JSON report (stable field order; findings sorted file/line).
    pub fn render_json(&self) -> String {
        let findings: Vec<Json> = self
            .new
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("rule".into(), Json::from(f.rule)),
                    ("file".into(), Json::from(f.file.as_str())),
                    ("line".into(), Json::from(f.line)),
                    ("col".into(), Json::from(f.col)),
                    ("snippet".into(), Json::from(f.snippet.as_str())),
                    ("why".into(), Json::from(f.why)),
                ])
            })
            .collect();
        let stale: Vec<Json> = self
            .stale
            .iter()
            .map(|(rule, file, count)| {
                Json::Obj(vec![
                    ("rule".into(), Json::from(rule.as_str())),
                    ("file".into(), Json::from(file.as_str())),
                    ("surplus".into(), Json::from(*count)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::from(1usize)),
            ("files_scanned".into(), Json::from(self.files_scanned)),
            ("new".into(), Json::Arr(findings)),
            ("baselined".into(), Json::from(self.baselined)),
            ("suppressed".into(), Json::from(self.suppressed)),
            ("stale_baseline".into(), Json::Arr(stale)),
            ("ok".into(), Json::from(self.clean())),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_with_finding() -> RunSummary {
        RunSummary {
            new: vec![Finding {
                rule: "panic-unwrap",
                file: "crates/core/src/x.rs".into(),
                line: 3,
                col: 9,
                snippet: "let v = rx.recv().unwrap();".into(),
                why: "why text",
            }],
            baselined: 2,
            suppressed: 1,
            files_scanned: 10,
            stale: vec![("det-hash-iter".into(), "crates/nn/src/y.rs".into(), 1)],
        }
    }

    #[test]
    fn text_report_names_location_rule_and_table() {
        let text = summary_with_finding().render_text();
        assert!(text.contains("crates/core/src/x.rs:3:9"));
        assert!(text.contains("[panic-unwrap]"));
        assert!(text.contains("rule"));
        assert!(text.contains("panic-unwrap    1") || text.contains("panic-unwrap  "));
        assert!(text.contains("--write-baseline"));
        assert!(text.contains("1 new finding(s), 2 baselined, 1 suppressed"));
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let s = summary_with_finding();
        let doc = Json::parse(&s.render_json()).expect("reporter emits valid JSON");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let new = doc
            .get("new")
            .and_then(Json::as_arr)
            .expect("new array present");
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].get("line").and_then(Json::as_usize), Some(3));
        assert_eq!(
            new[0].get("rule").and_then(Json::as_str),
            Some("panic-unwrap")
        );
    }

    #[test]
    fn clean_run_renders_ok() {
        let s = RunSummary {
            files_scanned: 5,
            ..RunSummary::default()
        };
        assert!(s.clean());
        let doc = Json::parse(&s.render_json()).expect("clean report is valid JSON");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert!(s.render_text().contains("0 new finding(s)"));
    }
}
