//! The rule engine: token rules and intraprocedural flow analyses per
//! file ([`check_file`]), interprocedural analyses over every file's
//! facts ([`analyze_program`]), honoring test-code exemptions and
//! in-source suppressions throughout.
//!
//! The engine is deliberately grammar-light: token rules catch what is
//! visible in the token stream (hash containers, unwraps, panics), and
//! the flow layer ([`crate::parse`], [`crate::flow`],
//! [`crate::callgraph`]) adds exactly the structure those rules lack —
//! function boundaries, guard scopes, call edges — without a parser
//! dependency the zero-dependency policy forbids. The price is
//! documented heuristics (linear-path scans, name-based call
//! resolution, not dataflow lattices); every heuristic errs toward
//! *flagging*, and the suppression mechanism — with a mandatory
//! reason — is the escape hatch.

use crate::callgraph::{det_taint_findings, lock_order_findings, ProgramFn};
use crate::flow::{self, LockFacts, TaintFacts};
use crate::lexer::{lex, Tok, TokKind};
use crate::parse::{calls_in, parse_fns};
use crate::rules::{in_scope, rule, RuleSpec, RULES};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Id of the violated rule.
    pub rule: &'static str,
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending source line, trimmed and whitespace-collapsed.
    pub snippet: String,
    /// The rule's rationale.
    pub why: &'static str,
}

/// Outcome of checking one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Violations that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Violations silenced by a valid `cascade-lint: allow` directive.
    pub suppressed: usize,
}

/// A parsed `// cascade-lint: allow…` directive.
struct Directive {
    rule_id: String,
    /// Line the directive silences (`None` for file-scope).
    target_line: Option<u32>,
    /// Where the directive itself sits (for error reporting).
    at_line: u32,
    /// Whether a non-empty reason followed the rule id.
    has_reason: bool,
    known: bool,
}

/// Per-function facts extracted by the flow layer.
struct FnFacts {
    name: String,
    lock: LockFacts,
    taint: TaintFacts,
}

/// Everything [`analyze_program`] needs about one scanned file: the
/// per-function flow facts plus the suppression and test-region context
/// to filter interprocedural findings at emission.
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    lines: Vec<String>,
    fns: Vec<FnFacts>,
    directives: Vec<Directive>,
    test_lines: Vec<u32>,
}

impl FileFacts {
    /// Whether a valid reasoned directive silences `rule_id` at `line`.
    fn allows(&self, rule_id: &str, line: u32) -> bool {
        self.directives.iter().any(|d| {
            d.known
                && d.has_reason
                && d.rule_id == rule_id
                && (d.target_line.is_none() || d.target_line == Some(line))
        })
    }
}

/// The offending source line, trimmed and whitespace-collapsed.
fn snippet_of(lines: &[String], line: u32) -> String {
    let raw = lines
        .get(line as usize - 1)
        .map(String::as_str)
        .unwrap_or("");
    let mut s = raw.split_whitespace().collect::<Vec<_>>().join(" ");
    if s.len() > 120 {
        s.truncate(117);
        s.push_str("...");
    }
    s
}

/// Deterministic finding order: (file, line, col, rule), deduplicated.
pub(crate) fn sort_findings(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings.dedup();
}

/// Checks one Rust source file against every rule in scope for `path`,
/// running the per-file analyses *and* the interprocedural ones over
/// this file alone. Workspace scans use [`check_file`] +
/// [`analyze_program`] instead, so call-graph analyses see every file
/// at once.
pub fn check_source(path: &str, source: &str) -> FileReport {
    let (mut report, facts) = check_file(path, source);
    let (extra, suppressed) = analyze_program(std::slice::from_ref(&facts));
    report.findings.extend(extra);
    report.suppressed += suppressed;
    sort_findings(&mut report.findings);
    report
}

/// Runs the token rules and intraprocedural flow analyses over one
/// file, returning its report plus the facts [`analyze_program`] needs.
pub fn check_file(path: &str, source: &str) -> (FileReport, FileFacts) {
    let toks = lex(source);
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let in_test = test_regions(&code);
    let (directives, comment_lines) = parse_directives(&toks, &code);

    let mut report = FileReport::default();
    let mut raw: Vec<(&'static RuleSpec, u32, u32)> = Vec::new();

    // ---- Determinism ----
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            raw.push((force("det-hash-iter"), t.line, t.col));
        }
        if t.is_ident("SystemTime") || (t.is_ident("Instant") && is_path_call(&code, i, "now")) {
            raw.push((force("det-wallclock"), t.line, t.col));
        }
    }
    float_accum(&code, &mut raw);

    // ---- Panic safety ----
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("unwrap") && is_method_call(&code, i) {
            raw.push((force("panic-unwrap"), t.line, t.col));
        }
        if t.is_ident("expect") && is_method_call(&code, i) {
            if let Some(msg) = code.get(i + 2).filter(|a| a.kind == TokKind::Str) {
                if !message_states_invariant(&msg.text) {
                    raw.push((force("panic-expect"), t.line, t.col));
                }
            }
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            raw.push((force("panic-macro"), t.line, t.col));
        }
    }
    unchecked_index(&code, &mut raw);

    // ---- Concurrency ----
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("thread") && is_path_call(&code, i, "spawn") {
            raw.push((force("conc-spawn"), t.line, t.col));
        }
        if t.is_ident("static") && code.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            raw.push((force("conc-static-mut"), t.line, t.col));
        }
    }

    // ---- Flow analyses (per function) ----
    // Guard-across-blocking and arena balance report here; lock and
    // taint facts feed `analyze_program`'s call-graph passes.
    let items = parse_fns(&code);
    let mut fn_facts: Vec<FnFacts> = Vec::with_capacity(items.len());
    for item in &items {
        let mut flow_raw: Vec<flow::RawFinding> = Vec::new();
        let mut lock = flow::scan_locks(&code, item, &mut flow_raw);
        let calls = calls_in(&code, item.body, &item.nested);
        lock.calls = flow::scan_calls_with_held(&code, item, &calls).calls;
        flow::scan_arena_balance(&code, item, &mut flow_raw);
        for (id, line, col) in flow_raw {
            raw.push((force(id), line, col));
        }
        fn_facts.push(FnFacts {
            name: item.name.clone(),
            lock,
            taint: flow::scan_taint(&code, item),
        });
    }

    // ---- Arena lifecycle ----
    // `arena::reset()` (or `cascade_tensor::arena::reset()`) outside the
    // designated batch-loop modules.
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("arena") && is_path_call(&code, i, "reset") {
            raw.push((force("arena-reset-confined"), t.line, t.col));
        }
    }

    // ---- I/O confinement ----
    // Flags `fs` as a path segment (`std::fs::…`, `use std::fs`,
    // `fs::File`); a plain identifier named `fs` with no `::` on either
    // side is not a filesystem access.
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("fs") {
            continue;
        }
        let path_before = i >= 3
            && code[i - 3].is_ident("std")
            && code[i - 2].is_punct(':')
            && code[i - 1].is_punct(':');
        let path_after = code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'));
        if path_before || path_after {
            raw.push((force("io-fs-confined"), t.line, t.col));
        }
    }

    // ---- Policy ----
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("allow")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 2).is_some_and(|n| n.is_ident("clippy"))
        {
            let justified =
                comment_lines.contains(&t.line) || comment_lines.contains(&(t.line - 1));
            if !justified {
                raw.push((force("policy-clippy-allow"), t.line, t.col));
            }
        }
    }
    for d in &directives {
        if !d.known || !d.has_reason {
            raw.push((force("policy-bare-suppression"), d.at_line, 1));
        }
    }

    // ---- Scope, test-code, and suppression filtering ----
    let test_lines: Vec<u32> = code
        .iter()
        .zip(&in_test)
        .filter(|(_, &t)| t)
        .map(|(tok, _)| tok.line)
        .collect();
    let facts = FileFacts {
        path: path.to_string(),
        lines: source.lines().map(str::to_string).collect(),
        fns: fn_facts,
        directives,
        test_lines,
    };

    for (spec, line, col) in raw {
        if !in_scope(spec, path) {
            continue;
        }
        if !spec.applies_to_tests && facts.test_lines.binary_search(&line).is_ok() {
            continue;
        }
        // `policy-bare-suppression` is the one rule that cannot be
        // suppressed — silencing the silencer defeats the audit trail.
        let suppressible = spec.id != "policy-bare-suppression";
        if suppressible && facts.allows(spec.id, line) {
            report.suppressed += 1;
            continue;
        }
        report.findings.push(Finding {
            rule: spec.id,
            file: path.to_string(),
            line,
            col,
            snippet: snippet_of(&facts.lines, line),
            why: spec.why,
        });
    }
    sort_findings(&mut report.findings);
    (report, facts)
}

/// Runs the interprocedural analyses — lock-order cycle detection and
/// determinism taint — over every scanned file's facts at once,
/// applying scope, test-code, and suppression filtering at emission.
pub fn analyze_program(files: &[FileFacts]) -> (Vec<Finding>, usize) {
    let mut program: Vec<ProgramFn> = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        for ff in &f.fns {
            program.push(ProgramFn {
                name: ff.name.clone(),
                file_idx: idx,
                lock: ff.lock.clone(),
                taint: ff.taint.clone(),
            });
        }
    }
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for pf in lock_order_findings(&program)
        .into_iter()
        .chain(det_taint_findings(&program))
    {
        let spec = force(pf.rule);
        let file = &files[pf.file_idx];
        if !in_scope(spec, &file.path) {
            continue;
        }
        if !spec.applies_to_tests && file.test_lines.binary_search(&pf.line).is_ok() {
            continue;
        }
        if file.allows(spec.id, pf.line) {
            suppressed += 1;
            continue;
        }
        findings.push(Finding {
            rule: spec.id,
            file: file.path.clone(),
            line: pf.line,
            col: pf.col,
            snippet: snippet_of(&file.lines, pf.line),
            why: spec.why,
        });
    }
    sort_findings(&mut findings);
    (findings, suppressed)
}

/// Resolves a rule id that is statically known to exist.
fn force(id: &'static str) -> &'static RuleSpec {
    match rule(id) {
        Some(spec) => spec,
        None => &RULES[0], // unreachable: ids above are registry literals
    }
}

/// `ident :: … :: tail (` starting at `i` (tolerating one intermediate
/// path segment, as in `std::thread::spawn` vs `thread::spawn`).
fn is_path_call(code: &[&Tok], i: usize, tail: &str) -> bool {
    let mut j = i + 1;
    for _ in 0..2 {
        if !(code.get(j).is_some_and(|t| t.is_punct(':'))
            && code.get(j + 1).is_some_and(|t| t.is_punct(':')))
        {
            return false;
        }
        j += 2;
        match code.get(j) {
            Some(t) if t.is_ident(tail) => {
                return code.get(j + 1).is_some_and(|n| n.is_punct('('));
            }
            Some(t) if t.kind == TokKind::Ident => j += 1,
            _ => return false,
        }
    }
    false
}

/// `. ident (` — token `i` is the method name of a call.
fn is_method_call(code: &[&Tok], i: usize) -> bool {
    i > 0 && code[i - 1].is_punct('.') && code.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// An `expect()` message that plausibly states an invariant: at least
/// two words and ten characters. "non-empty batch" passes; "boom" and
/// "failed" do not.
fn message_states_invariant(literal: &str) -> bool {
    let inner = literal
        .trim_start_matches(['b', 'r', '#'])
        .trim_matches(['#', '"']);
    inner.trim().len() >= 10 && inner.split_whitespace().count() >= 2
}

/// det-float-accum: a float reduction (`.sum()` / `.product()` /
/// `.fold(`) in the same statement as a `HashMap`/`HashSet` mention.
/// Statement boundaries are `;`, `{`, and `}` — coarse, but hash-ordered
/// reductions are single expressions in practice.
fn float_accum(code: &[&Tok], raw: &mut Vec<(&'static RuleSpec, u32, u32)>) {
    let mut has_hash = false;
    for (i, t) in code.iter().enumerate() {
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            has_hash = false;
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            has_hash = true;
        }
        if has_hash
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "sum" | "product" | "fold")
            && i > 0
            && code[i - 1].is_punct('.')
        {
            raw.push((force("det-float-accum"), t.line, t.col));
            has_hash = false;
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (slice patterns, array types, `for x in [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move", "as",
    "dyn", "impl", "where", "for", "const", "static", "type", "fn", "use", "pub",
];

/// panic-index: `expr[index]` where the brackets contain no `..` (range
/// slicing is conventional) — flags `v[i]`, skips `v[a..b]`, attributes,
/// array types, and slice patterns.
fn unchecked_index(code: &[&Tok], raw: &mut Vec<(&'static RuleSpec, u32, u32)>) {
    for (i, t) in code.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let prev = code[i - 1];
        let indexable = match prev.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if !indexable {
            continue;
        }
        // Walk to the matching `]`, rejecting ranges.
        let mut depth = 1usize;
        let mut j = i + 1;
        let mut has_range = false;
        let mut empty = true;
        while depth > 0 {
            let Some(n) = code.get(j) else { break };
            empty = false;
            if n.is_punct('[') {
                depth += 1;
            } else if n.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if n.is_punct('.') && code.get(j + 1).is_some_and(|m| m.is_punct('.')) {
                has_range = true;
            }
            j += 1;
        }
        if !has_range && !empty {
            raw.push((force("panic-index"), t.line, t.col));
        }
    }
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items (the attribute,
/// the item header, and its brace-delimited body).
fn test_regions(code: &[&Tok]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Extract the attribute's token range.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        while depth > 0 {
            match code.get(j) {
                Some(t) if t.is_punct('[') => depth += 1,
                Some(t) if t.is_punct(']') => depth -= 1,
                Some(_) => {}
                None => break,
            }
            j += 1;
        }
        let inner = &code[i + 2..j.saturating_sub(1).max(i + 2)];
        let is_test_attr = match inner.first() {
            Some(first) if first.is_ident("test") => true,
            Some(first) if first.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then the item: either to `;`
        // (e.g. a cfg'd `use`) or through the matching `}` of its body.
        let mut k = j;
        while code.get(k).is_some_and(|t| t.is_punct('#'))
            && code.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 1usize;
            k += 2;
            while d > 0 {
                match code.get(k) {
                    Some(t) if t.is_punct('[') => d += 1,
                    Some(t) if t.is_punct(']') => d -= 1,
                    Some(_) => {}
                    None => break,
                }
                k += 1;
            }
        }
        let mut end = k;
        while let Some(t) = code.get(end) {
            if t.is_punct(';') {
                end += 1;
                break;
            }
            if t.is_punct('{') {
                let mut d = 1usize;
                end += 1;
                while d > 0 {
                    match code.get(end) {
                        Some(t) if t.is_punct('{') => d += 1,
                        Some(t) if t.is_punct('}') => d -= 1,
                        Some(_) => {}
                        None => break,
                    }
                    end += 1;
                }
                break;
            }
            end += 1;
        }
        for f in flags.iter_mut().take(end.min(code.len())).skip(attr_start) {
            *f = true;
        }
        i = end;
    }
    flags
}

/// Parses `cascade-lint:` directives out of comment tokens. Returns the
/// directives plus the set of lines that contain any comment (used by
/// policy-clippy-allow's justification check). Standalone comment lines
/// target the next line that has code; trailing comments target their
/// own line.
fn parse_directives(toks: &[Tok], code: &[&Tok]) -> (Vec<Directive>, Vec<u32>) {
    let mut comment_lines: Vec<u32> = Vec::new();
    let mut code_lines: Vec<u32> = Vec::new();
    for t in toks {
        if t.kind == TokKind::Comment {
            comment_lines.push(t.line);
        }
    }
    for t in code {
        code_lines.push(t.line);
    }
    comment_lines.dedup();
    code_lines.dedup();

    let mut directives = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        // Doc comments describe the directive syntax; they never *are*
        // directives.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(rest) = t.text.find("cascade-lint:").map(|p| &t.text[p + 13..]) else {
            continue;
        };
        let rest = rest.trim_start();
        // Prose that merely mentions the marker is not a directive; only
        // an `allow…` form engages the parser (and from there on,
        // malformed input is itself a finding).
        let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            directives.push(Directive {
                rule_id: String::new(),
                target_line: None,
                at_line: t.line,
                has_reason: false,
                known: false,
            });
            continue;
        };
        let rule_id = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        let trailing = code_lines.binary_search(&t.line).is_ok();
        let target_line = if file_scope {
            None
        } else if trailing {
            Some(t.line)
        } else {
            // Standalone comment: silence the next code line.
            let next = code_lines
                .iter()
                .find(|&&l| l > t.line)
                .copied()
                .unwrap_or(t.line + 1);
            Some(next)
        };
        directives.push(Directive {
            known: rule(&rule_id).is_some(),
            rule_id,
            target_line,
            at_line: t.line,
            has_reason: reason.len() >= 8,
        });
    }
    (directives, comment_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXEC: &str = "crates/exec/src/worker.rs";
    const CORE: &str = "crates/core/src/scheduler.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        check_source(path, src)
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unwrap_flagged_in_hot_paths_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit(CORE, src), ["panic-unwrap"]);
        assert_eq!(
            rules_hit("crates/util/src/json.rs", src),
            Vec::<&str>::new()
        );
        // `unwrap` as a plain identifier (not a method call) is not a finding.
        assert!(rules_hit(CORE, "fn unwrap(x: u32) -> u32 { x }").is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_panic_rules() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(rules_hit(CORE, src).is_empty());
        let src =
            "#[test]\nfn t() { panic!(\"boom\"); }\nfn hot(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_hit(CORE, src), ["panic-unwrap"]);
    }

    #[test]
    fn expect_needs_an_invariant_message() {
        assert_eq!(
            rules_hit(CORE, "fn f(x: Option<u32>) -> u32 { x.expect(\"oops\") }"),
            ["panic-expect"]
        );
        assert!(rules_hit(
            CORE,
            "fn f(x: Option<u32>) -> u32 { x.expect(\"scheduler inserted this chunk above\") }"
        )
        .is_empty());
    }

    #[test]
    fn panic_family_macros_flagged() {
        for mac in [
            "panic!(\"x\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
        ] {
            let src = format!("fn f() {{ {} }}", mac);
            assert_eq!(rules_hit(CORE, &src), ["panic-macro"], "{}", mac);
        }
    }

    #[test]
    fn unchecked_index_only_in_exec_and_ranges_pass() {
        let idx = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert_eq!(rules_hit(EXEC, idx), ["panic-index"]);
        assert!(
            rules_hit(CORE, idx).is_empty(),
            "panic-index is exec-scoped"
        );
        assert!(rules_hit(EXEC, "fn f(v: &[u32]) -> &[u32] { &v[1..3] }").is_empty());
        assert!(rules_hit(EXEC, "fn f() { let [a, b] = [1u32, 2]; let _ = (a, b); }").is_empty());
        assert!(rules_hit(EXEC, "#[derive(Clone)]\nstruct S;").is_empty());
    }

    #[test]
    fn wallclock_flagged_but_telemetry_module_allowlisted() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert_eq!(rules_hit(CORE, src), ["det-wallclock"]);
        assert!(rules_hit("crates/core/src/instrument.rs", src).is_empty());
    }

    #[test]
    fn hash_containers_flagged_in_compute_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            rules_hit("crates/models/src/model.rs", src),
            ["det-hash-iter"]
        );
        assert!(rules_hit("crates/bench/src/main.rs", src).is_empty());
    }

    #[test]
    fn float_accum_needs_hash_and_reduction_in_one_statement() {
        let bad =
            "fn f() { let s: f32 = HashMap::from([(1u32, 1.0f32)]).values().sum(); let _ = s; }";
        // The HashMap mention itself plus the hash-ordered reduction.
        assert_eq!(rules_hit(CORE, bad), ["det-hash-iter", "det-float-accum"]);
        assert_eq!(
            rules_hit(CORE, "fn f(v: &[f32]) -> f32 { v.iter().sum() }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn spawn_banned_in_exec_except_pipeline() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_hit(EXEC, src), ["conc-spawn"]);
        assert!(rules_hit("crates/exec/src/pipeline.rs", src).is_empty());
        assert!(rules_hit(CORE, src).is_empty(), "conc-spawn is exec-scoped");
        assert_eq!(
            rules_hit(EXEC, "fn f() { thread::spawn(|| {}); }"),
            ["conc-spawn"]
        );
    }

    #[test]
    fn fs_access_confined_to_storage_modules() {
        let src = "fn f() { std::fs::write(\"x\", b\"y\").ok(); }";
        assert_eq!(rules_hit(CORE, src), ["io-fs-confined"]);
        assert_eq!(rules_hit(EXEC, src), ["io-fs-confined"]);
        assert_eq!(
            rules_hit("crates/tgraph/src/source.rs", src),
            ["io-fs-confined"]
        );
        // The designated I/O modules and the storage layer itself pass.
        assert!(rules_hit("crates/tgraph/src/dataset.rs", src).is_empty());
        assert!(rules_hit("crates/models/src/checkpoint.rs", src).is_empty());
        assert!(rules_hit("crates/store/src/writer.rs", src).is_empty());
        // `use std::fs;` and a bare `fs::` path both count.
        assert_eq!(rules_hit(CORE, "use std::fs;"), ["io-fs-confined"]);
        assert_eq!(
            rules_hit(CORE, "fn f() { fs::remove_file(\"x\").ok(); }"),
            ["io-fs-confined"]
        );
        // A variable that happens to be named `fs` is not file I/O.
        assert!(rules_hit(CORE, "fn f(fs: u32) -> u32 { fs + 1 }").is_empty());
    }

    #[test]
    fn static_mut_flagged_everywhere() {
        assert_eq!(
            rules_hit("crates/util/src/rng.rs", "static mut COUNTER: u32 = 0;"),
            ["conc-static-mut"]
        );
    }

    #[test]
    fn guard_across_blocking_detected_and_released_guards_pass() {
        let bad = "fn f() { let g = m.lock().unwrap(); tx.send(1).ok(); let _ = g; }";
        let hits = rules_hit(CORE, bad);
        assert!(hits.contains(&"conc-guard-across-blocking"), "{:?}", hits);
        let dropped = "fn f() { let g = m.lock(); drop(g); tx.send(1).ok(); }";
        assert!(!rules_hit(CORE, dropped).contains(&"conc-guard-across-blocking"));
        let scoped = "fn f() { { let g = m.lock(); let _ = g; } tx.send(1).ok(); }";
        assert!(!rules_hit(CORE, scoped).contains(&"conc-guard-across-blocking"));
        // The generalized rule also covers join/sync_all/accept/wait.
        let joined = "fn f() { let g = m.lock(); h.join(); let _ = g; }";
        assert!(rules_hit(CORE, joined).contains(&"conc-guard-across-blocking"));
    }

    #[test]
    fn single_file_check_runs_the_interprocedural_analyses() {
        let cycle = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }\n\
                     fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }\n";
        let hits = rules_hit(CORE, cycle);
        assert!(hits.contains(&"conc-lock-order"), "{:?}", hits);

        let taint = "fn source() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }\n\
                     fn train(&mut self) { let lr = source(); self.opt.step(lr); }\n";
        let hits = rules_hit(CORE, taint);
        assert!(hits.contains(&"det-taint"), "{:?}", hits);
    }

    #[test]
    fn clippy_allow_needs_a_nearby_comment() {
        let bare = "#[allow(clippy::too_many_arguments)]\nfn f() {}";
        assert_eq!(
            rules_hit("crates/util/src/x.rs", bare),
            ["policy-clippy-allow"]
        );
        let justified = "// wide API mirrors the paper's signature\n#[allow(clippy::too_many_arguments)]\nfn f() {}";
        assert!(rules_hit("crates/util/src/x.rs", justified).is_empty());
    }

    #[test]
    fn trailing_suppression_silences_its_line() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cascade-lint: allow(panic-unwrap): caller checked is_some on entry\n";
        let report = check_source(CORE, src);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let src = "// cascade-lint: allow(panic-unwrap): caller checked is_some on entry\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let report = check_source(CORE, src);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 1);
        // ...and only that line: a second violation further down stays.
        let src2 = format!("{}fn g(y: Option<u32>) -> u32 {{ y.unwrap() }}\n", src);
        assert_eq!(rules_hit(CORE, &src2), ["panic-unwrap"]);
    }

    #[test]
    fn file_scope_suppression_covers_whole_file() {
        let src = "// cascade-lint: allow-file(det-wallclock): telemetry only, never steers batching\nfn a() { let _ = Instant::now(); }\nfn b() { let _ = Instant::now(); }\n";
        let report = check_source(CORE, src);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 2);
    }

    #[test]
    fn suppression_without_reason_is_itself_a_finding() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cascade-lint: allow(panic-unwrap)\n";
        let hits = rules_hit(CORE, src);
        // The unwrap still fires AND the bare directive is reported.
        assert!(hits.contains(&"panic-unwrap"), "{:?}", hits);
        assert!(hits.contains(&"policy-bare-suppression"), "{:?}", hits);
        // A too-short reason is the same as no reason.
        let short =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cascade-lint: allow(panic-unwrap): ok\n";
        assert!(rules_hit(CORE, short).contains(&"policy-bare-suppression"));
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let src = "// cascade-lint: allow(no-such-rule): a perfectly good reason\nfn f() {}\n";
        assert_eq!(rules_hit(CORE, src), ["policy-bare-suppression"]);
    }

    #[test]
    fn bare_suppression_cannot_be_suppressed() {
        let src = "// cascade-lint: allow-file(policy-bare-suppression): trying to silence the silencer\n// cascade-lint: allow(panic-unwrap)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let hits = rules_hit(CORE, src);
        assert!(hits.contains(&"policy-bare-suppression"), "{:?}", hits);
    }

    #[test]
    fn doc_comments_describing_directives_are_not_directives() {
        let src = "/// Silence with `// cascade-lint: allow(panic-unwrap)` plus a reason.\n//! See `cascade-lint: allow(<rule>): <reason>` in the README.\nfn f() {}\n";
        assert!(rules_hit(CORE, src).is_empty());
    }

    #[test]
    fn findings_carry_location_and_snippet() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let report = check_source(CORE, src);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!((f.line, f.col), (2, 7));
        assert_eq!(f.snippet, "x.unwrap()");
        assert_eq!(f.file, CORE);
    }
}
