//! A lightweight item parser on top of the lexer: function boundaries,
//! parameter names, and call sites with receiver chains.
//!
//! This is deliberately **not** a Rust grammar. The flow analyses
//! ([`crate::flow`], [`crate::callgraph`]) need exactly three structural
//! facts the token stream alone cannot give them — where a function's
//! body starts and ends, what its parameters are named, and which calls
//! it makes (with the identifier chain each argument mentions) — and a
//! ~300-line scanner that the whole team can read recovers those facts
//! with brace/paren matching plus a handful of keyword rules. Everything
//! it cannot parse it skips: an unparseable item simply contributes no
//! functions, and the analyses err toward silence rather than noise on
//! exotic syntax (macros, const generics in weird positions). The
//! fixtures in `tests/fixtures/` and the seeded tree in
//! `tests/fixture_tree/` define the supported shapes.

use crate::lexer::Tok;
use crate::lexer::TokKind;

/// One `fn` item: its name, parameter binding names, and the code-token
/// index range of its body (exclusive of the braces).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name (`fn name(...)`).
    pub name: String,
    /// Parameter binding names, in order (`self` counts; pattern
    /// parameters contribute their first identifier).
    pub params: Vec<String>,
    /// `[start, end)` code-token indices of the body, inside the braces.
    pub body: (usize, usize),
    /// Body token ranges of *directly nested* `fn` items, which the flow
    /// analyses skip (each nested fn is analyzed as its own item).
    pub nested: Vec<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// The called name: method name for `x.m(...)`, last path segment
    /// for `a::b::c(...)`, the identifier itself for `f(...)`.
    pub callee: String,
    /// The identifier chain before the call: `self.a.b.m()` yields
    /// `["a", "b"]` (a leading `self` is dropped), `arena::recycle()`
    /// yields `["arena"]`, a free `f()` yields `[]`.
    pub receiver: Vec<String>,
    /// Per top-level argument: every identifier the argument mentions.
    pub args: Vec<Vec<String>>,
    /// Code-token index ranges of each top-level argument.
    pub arg_ranges: Vec<(usize, usize)>,
    /// Code-token index of the callee identifier.
    pub name_idx: usize,
    /// 1-based source location of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "as", "in", "else", "let",
    "mut", "ref", "pub", "use", "impl", "where", "struct", "enum", "trait", "type", "const",
    "static", "break", "continue", "crate", "super",
];

/// Extracts every `fn` item (at any nesting depth) from a comment-free
/// token slice. Items whose body cannot be delimited are skipped.
pub fn parse_fns(code: &[&Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1; // `fn(` pointer type or malformed item
            continue;
        };
        let mut j = i + 2;
        // Skip generics between the name and the parameter list.
        if code.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 1usize;
            j += 1;
            while depth > 0 {
                match code.get(j) {
                    Some(t) if t.is_punct('<') => depth += 1,
                    Some(t) if t.is_punct('>') && !code[j - 1].is_punct('-') => depth -= 1,
                    Some(_) => {}
                    None => break,
                }
                j += 1;
            }
        }
        if !code.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let (params, after_params) = parse_params(code, j);
        // Scan past return type / where clause to the body or a `;`.
        let mut k = after_params;
        let mut body = None;
        while let Some(t) = code.get(k) {
            if t.is_punct(';') {
                break; // trait method declaration: no body
            }
            if t.is_punct('{') {
                let end = match_brace(code, k);
                body = Some((k + 1, end));
                break;
            }
            k += 1;
        }
        if let Some(body) = body {
            fns.push(FnItem {
                name: name_tok.text.clone(),
                params,
                body,
                nested: Vec::new(),
                line: code[i].line,
            });
        }
        i += 2; // continue inside: nested fns are collected too
    }
    // Record, for each fn, the bodies of fns nested directly inside it.
    let bodies: Vec<(usize, usize)> = fns.iter().map(|f| f.body).collect();
    for f in &mut fns {
        f.nested = bodies
            .iter()
            .filter(|&&(s, e)| s > f.body.0 && e < f.body.1)
            .copied()
            .collect();
    }
    fns
}

/// Parses the parameter list starting at the `(` at `open`. Returns the
/// binding names and the index just past the matching `)`.
fn parse_params(code: &[&Tok], open: usize) -> (Vec<String>, usize) {
    let close = match_paren(code, open);
    let mut params = Vec::new();
    let mut seg_start = open + 1;
    let mut depth = 0usize;
    let mut k = open + 1;
    while k <= close {
        let at_end = k == close;
        let t = code.get(k);
        if let Some(t) = t {
            // `->` return arrows inside `impl Fn() -> T` types must not
            // count as closing angle brackets.
            let arrow = t.is_punct('>') && k >= 1 && code[k - 1].is_punct('-');
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if (t.is_punct(')') && k != close)
                || t.is_punct(']')
                || (t.is_punct('>') && !arrow)
            {
                depth = depth.saturating_sub(1);
            }
        }
        if at_end || (depth == 0 && t.is_some_and(|t| t.is_punct(','))) {
            if let Some(name) = code[seg_start..k]
                .iter()
                .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
            {
                params.push(name.text.clone());
            }
            seg_start = k + 1;
        }
        k += 1;
    }
    (params, close + 1)
}

/// Index of the token just past the `}` matching the `{` at `open`
/// (or `code.len()` when unterminated).
pub(crate) fn match_brace(code: &[&Tok], open: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while depth > 0 {
        match code.get(k) {
            Some(t) if t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct('}') => depth -= 1,
            Some(_) => {}
            None => return code.len(),
        }
        k += 1;
    }
    k - 1
}

/// Index of the `)` matching the `(` at `open` (or `code.len()`).
fn match_paren(code: &[&Tok], open: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while depth > 0 {
        match code.get(k) {
            Some(t) if t.is_punct('(') => depth += 1,
            Some(t) if t.is_punct(')') => depth -= 1,
            Some(_) => {}
            None => return code.len(),
        }
        k += 1;
    }
    k - 1
}

/// Whether code-token `i` falls inside any of the given (nested-fn)
/// ranges.
pub fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(s, e)| i >= s && i < e)
}

/// The identifier chain ending in the token *before* index `i`'s `.` or
/// `::` separator — for `self.a.b.m` with `i` at `m`, returns
/// `["a", "b"]` (leading `self` dropped). Empty when the receiver is a
/// compound expression (`f().lock()`).
pub fn receiver_chain(code: &[&Tok], i: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let mut k = i;
    loop {
        // Expect a separator before position k: `.` or `::`.
        let (sep_width, matched) = if k >= 1 && code[k - 1].is_punct('.') {
            (1, true)
        } else if k >= 2 && code[k - 1].is_punct(':') && code[k - 2].is_punct(':') {
            (2, true)
        } else {
            (0, false)
        };
        if !matched {
            break;
        }
        let prev = k.checked_sub(sep_width + 1).map(|p| code[p]);
        match prev {
            Some(t) if t.kind == TokKind::Ident => {
                chain.push(t.text.clone());
                k -= sep_width + 1;
            }
            _ => break, // `foo().bar` — unresolvable receiver
        }
    }
    chain.reverse();
    if chain.first().is_some_and(|s| s == "self") {
        chain.remove(0);
    }
    chain
}

/// Extracts every call site in `[start, end)`, skipping `skip` ranges
/// (nested fn bodies) and macro invocations (`name!(…)`).
pub fn calls_in(code: &[&Tok], range: (usize, usize), skip: &[(usize, usize)]) -> Vec<Call> {
    let mut calls = Vec::new();
    let (start, end) = range;
    for i in start..end.min(code.len()) {
        if in_ranges(skip, i) {
            continue;
        }
        let t = code[i];
        if t.kind != TokKind::Ident
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
            || !code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        // `name!(…)` macros never reach here: the token after the name
        // is `!`, not `(`, so the call pattern above already rejects
        // them.
        let open = i + 1;
        let close = match_paren(code, open);
        let mut args: Vec<Vec<String>> = Vec::new();
        let mut arg_ranges: Vec<(usize, usize)> = Vec::new();
        let mut seg_start = open + 1;
        let mut depth = 0usize;
        for k in open + 1..=close.min(code.len()) {
            let at_end = k == close;
            if !at_end {
                let a = code[k];
                if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                    depth += 1;
                } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                    depth = depth.saturating_sub(1);
                }
            }
            if at_end || (depth == 0 && code[k].is_punct(',')) {
                if k > seg_start {
                    args.push(
                        code[seg_start..k]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone())
                            .collect(),
                    );
                    arg_ranges.push((seg_start, k));
                }
                seg_start = k + 1;
            }
        }
        calls.push(Call {
            callee: t.text.clone(),
            receiver: receiver_chain(code, i),
            args,
            arg_ranges,
            name_idx: i,
            line: t.line,
            col: t.col,
        });
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Tok> {
        lex(src)
    }

    fn fns_of(src: &str) -> Vec<FnItem> {
        let toks = code(src);
        let refs: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        parse_fns(&refs)
    }

    #[test]
    fn finds_fn_names_params_and_bodies() {
        let fns = fns_of("fn a(x: u32, mut y: &str) -> u32 { x }\nfn b() {}\n");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].params, vec!["x", "y"]);
        assert_eq!(fns[1].name, "b");
        assert!(fns[1].params.is_empty());
        assert_eq!(fns[1].body.0, fns[1].body.1, "empty body is empty range");
    }

    #[test]
    fn self_and_generic_fns_parse() {
        let fns = fns_of("impl S { fn m<T: Clone>(&self, v: Vec<T>) -> usize { v.len() } }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "m");
        assert_eq!(fns[0].params, vec!["self", "v"]);
    }

    #[test]
    fn nested_fns_are_separate_items_with_skip_ranges() {
        let fns = fns_of("fn outer() { fn inner(q: u32) -> u32 { q } inner(1); }");
        assert_eq!(fns.len(), 2);
        let outer = fns
            .iter()
            .find(|f| f.name == "outer")
            .expect("outer parsed");
        let inner = fns
            .iter()
            .find(|f| f.name == "inner")
            .expect("inner parsed");
        assert_eq!(outer.nested, vec![inner.body]);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let fns = fns_of("trait T { fn decl(&self) -> u32; fn with_body(&self) -> u32 { 1 } }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_body");
    }

    #[test]
    fn calls_capture_callee_receiver_and_args() {
        let toks = code("fn f() { self.engine.apply(batch, arena::take_zeroed(n)); }");
        let refs: Vec<&Tok> = toks.iter().collect();
        let fns = parse_fns(&refs);
        let calls = calls_in(&refs, fns[0].body, &[]);
        let apply = calls
            .iter()
            .find(|c| c.callee == "apply")
            .expect("apply call found");
        assert_eq!(apply.receiver, vec!["engine"]);
        assert_eq!(apply.args.len(), 2);
        assert_eq!(apply.args[0], vec!["batch"]);
        assert!(apply.args[1].contains(&"take_zeroed".to_string()));
        let take = calls
            .iter()
            .find(|c| c.callee == "take_zeroed")
            .expect("nested call found");
        assert_eq!(take.receiver, vec!["arena"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let toks = code("fn f(v: &[u32]) { assert_eq!(v.len(), 1); if (v.len()) > 0 {} }");
        let refs: Vec<&Tok> = toks.iter().collect();
        let fns = parse_fns(&refs);
        let calls = calls_in(&refs, fns[0].body, &[]);
        let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(!names.contains(&"assert_eq"), "{:?}", names);
        assert!(!names.contains(&"if"), "{:?}", names);
        assert!(names.contains(&"len"), "{:?}", names);
    }

    #[test]
    fn receiver_chain_drops_self_and_stops_at_expressions() {
        let toks = code("a.b.c.m() self.x.m2() make().m3()");
        let refs: Vec<&Tok> = toks.iter().collect();
        let idx = |name: &str| {
            refs.iter()
                .position(|t| t.is_ident(name))
                .expect("token present")
        };
        assert_eq!(receiver_chain(&refs, idx("m")), vec!["a", "b", "c"]);
        assert_eq!(receiver_chain(&refs, idx("m2")), vec!["x"]);
        assert_eq!(receiver_chain(&refs, idx("m3")), Vec::<String>::new());
    }
}
