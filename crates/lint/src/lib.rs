#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-lint
//!
//! A zero-dependency static-analysis gate for the Cascade workspace.
//!
//! The compiler cannot check the invariants Cascade's correctness claims
//! rest on: the pipelined executor must stay **bit-identical** to serial
//! training at staleness 0 (DESIGN.md §6), and the TG-Diffuser /
//! SG-Filter / ABS loop is only reproducible if no nondeterministic API
//! leaks into a compute path. Regressions there are silent data
//! corruption, not crashes — so this crate walks the whole workspace at
//! CI time and enforces the project invariants as named, suppressible
//! rules (see [`rules::RULES`]):
//!
//! * **determinism** — no `HashMap`/`HashSet`, `Instant::now` /
//!   `SystemTime`, or hash-ordered float accumulation in the compute
//!   crates (`core`, `exec`, `models`, `nn`); telemetry is allowlisted.
//! * **panic-safety** — no bare `unwrap()` / one-word `expect()` /
//!   `panic!`-family macros in hot paths; unchecked indexing is banned
//!   in the executor.
//! * **concurrency** — no detached `thread::spawn` outside the
//!   designated modules, no lock guard held across a blocking call
//!   (channel ops, joins, fsync, accept), no lock-order cycles across
//!   the workspace call graph, no `static mut` anywhere.
//! * **lifecycle** — arena `take_*` buffers recycled or moved out on
//!   every path out of a function; `arena::reset()` confined to batch
//!   boundaries.
//! * **policy** — no unexplained `#[allow(clippy::…)]`, no registry
//!   dependencies in any manifest, no suppression without a reason.
//!
//! The determinism and concurrency families are *flow-aware* since v2:
//! a lightweight item parser ([`parse`]) recovers function boundaries
//! and call edges, per-function scans ([`flow`]) track guard scopes,
//! arena buffer lifetimes, and taint sources, and the call-graph layer
//! ([`callgraph`]) propagates lock orders and determinism taint across
//! the whole workspace (`conc-lock-order`, `det-taint`).
//!
//! Findings are diffed against a checked-in [`baseline`] so CI fails
//! only on *new* violations, and every finding can be silenced in place
//! with `// cascade-lint: allow(<rule>): <reason>` — the reason is
//! mandatory and audited.
//!
//! # Examples
//!
//! Lint a source fragment as if it lived in a compute crate:
//!
//! ```
//! use cascade_lint::check_source;
//!
//! let report = check_source(
//!     "crates/exec/src/worker.rs",
//!     "fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }",
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "panic-unwrap");
//! ```

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;
pub mod walk;

pub use baseline::{Baseline, BaselineEntry, Diff};
pub use engine::{analyze_program, check_file, check_source, FileFacts, FileReport, Finding};
pub use lexer::{lex, Tok, TokKind};
pub use manifest::check_manifest;
pub use report::RunSummary;
pub use rules::{RuleSpec, RULES};
pub use walk::{find_root, workspace_files, SourceFile};

use std::path::Path;

/// Scans every workspace file under `root` and returns all findings
/// (pre-baseline) plus the suppressed count and the file count.
///
/// Per-file rules run file by file; the interprocedural analyses
/// (lock order, determinism taint) then run once over every file's
/// facts, so call-graph edges cross crate boundaries. Findings are
/// sorted by (path, line, col, rule) so the report — and any baseline
/// written from it — is byte-identical across runs.
///
/// # Errors
///
/// Returns a description of the first unreadable file or directory.
pub fn scan_workspace(root: &Path) -> Result<(Vec<Finding>, usize, usize), String> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut facts: Vec<FileFacts> = Vec::new();
    let count = files.len();
    for file in &files {
        let text = std::fs::read_to_string(&file.disk_path)
            .map_err(|e| format!("read {}: {}", file.disk_path.display(), e))?;
        if file.is_manifest {
            findings.extend(check_manifest(&file.rel_path, &text));
        } else {
            let (report, file_facts) = check_file(&file.rel_path, &text);
            findings.extend(report.findings);
            suppressed += report.suppressed;
            facts.push(file_facts);
        }
    }
    let (global, global_suppressed) = analyze_program(&facts);
    findings.extend(global);
    suppressed += global_suppressed;
    engine::sort_findings(&mut findings);
    Ok((findings, suppressed, count))
}
