//! Interprocedural analyses over the per-function facts extracted by
//! [`crate::flow`]: lock-order cycle detection (`conc-lock-order`) and
//! determinism taint propagation (`det-taint`).
//!
//! Calls are resolved **by name**, with different precision per
//! analysis:
//!
//! * **Taint** merges collisions conservatively — a call to `step`
//!   unions the behavior of every `step` in the workspace — because a
//!   missed propagation is a missed determinism bug and the union is
//!   still about real dataflow.
//! * **Lock order** resolves an ambiguous name (more than one def
//!   program-wide) only among defs in the *caller's own file*; a name
//!   with no same-file def must be globally unique to propagate.
//!   Unioning every namesake here does not err "safe": it invents
//!   lock-acquisition edges between unrelated types that merely share
//!   a method name (`clone`, `snapshot`, `reset`, ...) and
//!   manufactures deadlock cycles out of coincidental naming. Method
//!   calls overwhelmingly target the local impl, so same-file
//!   resolution keeps real intra-module cycles while cross-module
//!   helpers keep distinctive names that resolve uniquely.
//!
//! Both fixpoints are over sets that only grow, so termination is by
//! size bound.

use std::collections::{BTreeMap, BTreeSet};

use crate::flow::{LockFacts, TaintFacts};

/// One function's facts, positioned in the program.
pub struct ProgramFn {
    /// The function's name (unqualified).
    pub name: String,
    /// Index into the file list the engine scanned.
    pub file_idx: usize,
    /// Lock acquisition facts.
    pub lock: LockFacts,
    /// Taint facts.
    pub taint: TaintFacts,
}

/// A raw interprocedural finding; the engine applies scope, test, and
/// suppression filtering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProgramFinding {
    /// Rule id.
    pub rule: &'static str,
    /// Index into the engine's file list.
    pub file_idx: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Functions that mutate training state: any tainted argument reaching
/// one of these is a determinism hazard.
const SINK_FNS: &[&str] = &[
    "apply_batch",
    "process_batch",
    "step",
    "import_state",
    "replay_adjacency",
    "update_memory",
    "set_memory",
    "write_memory",
    "push_mail",
    "apply_events",
    "ingest_batch",
    "apply_ingest",
    // cascade-dist: the shard-index-ordered gradient exchange and the
    // split-phase shard memory application. A clock or hash-order value
    // reaching any of these breaks the N=1 bit-identity guarantee the
    // dist tests and DESIGN.md §12 rely on.
    "all_reduce",
    "apply_writeback",
    "apply_messages",
    "apply_round",
    "memory_write",
    "mailbox_push",
];

/// Receiver-chain segments that name training state: a method call on
/// one of these with arguments is treated as a state mutation sink.
/// `plane`/`shards` cover the dist memory plane (sharded node state).
const SINK_RECEIVERS: &[&str] = &["memory", "mailbox", "params", "plane", "shards"];

/// Detects lock-order cycles across the program.
///
/// Direct edges come from each function's `held → acquired` pairs;
/// interprocedural edges come from calls made while holding a lock,
/// targeting every lock the callee transitively acquires. An edge is
/// flagged when the acquired resource can reach the held resource back
/// through the edge graph (a cycle). Self-edges (`a → a`) are excluded:
/// distinct locks in different types can share a field name, and
/// re-acquisition of a true single resource is better caught by review
/// than by a name-collision-prone lint.
pub fn lock_order_findings(fns: &[ProgramFn]) -> Vec<ProgramFinding> {
    // name → defining fn indices, for call resolution.
    let mut defs: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        defs.entry(f.name.as_str()).or_default().push(i);
    }
    // Resolve a call site to candidate bodies. A unique name resolves
    // program-wide; an ambiguous one only among the caller's own file
    // (see module docs — global unions of namesakes invent lock edges).
    let resolve = |caller_file: usize, callee: &str| -> Vec<usize> {
        match defs.get(callee) {
            None => Vec::new(),
            Some(c) if c.len() == 1 => c.clone(),
            Some(c) => c
                .iter()
                .copied()
                .filter(|&j| fns[j].file_idx == caller_file)
                .collect(),
        }
    };

    // fn index → transitively acquired resources, to fixpoint.
    let mut trans: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.lock.acquires.iter().cloned().collect())
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for (callee, _, _, _) in &f.lock.calls {
                for j in resolve(f.file_idx, callee) {
                    add.extend(trans[j].iter().cloned());
                }
            }
            let before = trans[i].len();
            trans[i].extend(add);
            changed |= trans[i].len() != before;
        }
        if !changed {
            break;
        }
    }

    // Collect every held→acquired edge with its location.
    let mut edges: Vec<(String, String, usize, u32, u32)> = Vec::new();
    for f in fns {
        for (held, acquired, line, col) in &f.lock.edges {
            edges.push((held.clone(), acquired.clone(), f.file_idx, *line, *col));
        }
        for (callee, held, line, col) in &f.lock.calls {
            if held.is_empty() {
                continue;
            }
            let mut acquired: BTreeSet<&str> = BTreeSet::new();
            for j in resolve(f.file_idx, callee) {
                acquired.extend(trans[j].iter().map(String::as_str));
            }
            for h in held {
                for a in &acquired {
                    edges.push((h.clone(), (*a).to_string(), f.file_idx, *line, *col));
                }
            }
        }
    }

    // Reachability over the resource graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (h, a, _, _, _) in &edges {
        adj.entry(h.as_str()).or_default().insert(a.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };

    let mut findings: BTreeSet<ProgramFinding> = BTreeSet::new();
    for (h, a, file_idx, line, col) in &edges {
        if h != a && reaches(a, h) {
            findings.insert(ProgramFinding {
                rule: "conc-lock-order",
                file_idx: *file_idx,
                line: *line,
                col: *col,
            });
        }
    }
    findings.into_iter().collect()
}

/// Whether a call is a state-mutation sink by itself (independent of
/// callee-body analysis).
fn is_direct_sink(callee: &str, receiver: &[String], has_args: bool) -> bool {
    if SINK_FNS.contains(&callee) {
        return true;
    }
    has_args
        && receiver
            .iter()
            .any(|r| SINK_RECEIVERS.contains(&r.as_str()))
}

/// Per-function view used by both taint fixpoints.
struct TaintState<'a> {
    f: &'a ProgramFn,
    /// Effective parameter names (leading `self` stripped so call
    /// arguments align positionally for method-style definitions).
    params: Vec<&'a str>,
}

impl<'a> TaintState<'a> {
    /// Locals holding tainted values, given the current set of
    /// taint-returning functions.
    fn tainted_locals(&self, ret_taint: &BTreeSet<&str>) -> BTreeSet<&'a str> {
        let mut tainted: BTreeSet<&str> = BTreeSet::new();
        // Two passes cover let-chains that a single forward pass would
        // miss only under shadow-reordering, which the scanner does not
        // model anyway.
        for _ in 0..2 {
            for l in &self.f.taint.lets {
                if l.direct
                    || l.callees.iter().any(|c| ret_taint.contains(c.as_str()))
                    || l.uses.iter().any(|u| tainted.contains(u.as_str()))
                {
                    tainted.insert(l.name.as_str());
                }
            }
        }
        tainted
    }

    /// For each local, the set of (effective) parameter indices whose
    /// value may flow into it.
    fn param_carriers(&self) -> BTreeMap<&'a str, BTreeSet<usize>> {
        let mut carries: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
        for _ in 0..2 {
            for l in &self.f.taint.lets {
                let mut set: BTreeSet<usize> = BTreeSet::new();
                for u in &l.uses {
                    if let Some(j) = self.params.iter().position(|p| p == u) {
                        set.insert(j);
                    }
                    if let Some(prev) = carries.get(u.as_str()) {
                        set.extend(prev.iter().copied());
                    }
                }
                if !set.is_empty() {
                    carries.entry(l.name.as_str()).or_default().extend(set);
                }
            }
        }
        carries
    }
}

/// Propagates determinism taint through the call graph and reports
/// every call site where a wall-clock/hash-iteration value reaches a
/// training-state mutation.
pub fn det_taint_findings(fns: &[ProgramFn]) -> Vec<ProgramFinding> {
    let states: Vec<TaintState> = fns
        .iter()
        .map(|f| TaintState {
            f,
            params: f
                .taint
                .params
                .iter()
                .map(String::as_str)
                .skip_while(|p| *p == "self")
                .collect(),
        })
        .collect();

    // Fixpoint 1: functions whose return value is tainted.
    let mut ret_taint: BTreeSet<&str> = BTreeSet::new();
    loop {
        let mut changed = false;
        for s in &states {
            if ret_taint.contains(s.f.name.as_str()) {
                continue;
            }
            let locals = s.tainted_locals(&ret_taint);
            let tainted_ret = s.f.taint.rets.iter().any(|r| {
                r.direct
                    || r.callees.iter().any(|c| ret_taint.contains(c.as_str()))
                    || r.uses.iter().any(|u| locals.contains(u.as_str()))
            });
            if tainted_ret {
                ret_taint.insert(s.f.name.as_str());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Fixpoint 2: parameter positions that reach a sink inside the
    // callee (directly or through further calls).
    let mut sink_params: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    loop {
        let mut changed = false;
        for s in &states {
            let carries = s.param_carriers();
            let mut found: BTreeSet<usize> = BTreeSet::new();
            for c in &s.f.taint.calls {
                let direct = is_direct_sink(&c.callee, &c.receiver, !c.args.is_empty());
                let callee_sinks = sink_params.get(c.callee.as_str());
                for (k, arg) in c.args.iter().enumerate() {
                    let arg_is_sink_position =
                        direct || callee_sinks.is_some_and(|set| set.contains(&k));
                    if !arg_is_sink_position {
                        continue;
                    }
                    for u in &arg.uses {
                        if let Some(j) = s.params.iter().position(|p| p == u) {
                            found.insert(j);
                        }
                        if let Some(set) = carries.get(u.as_str()) {
                            found.extend(set.iter().copied());
                        }
                    }
                }
            }
            if !found.is_empty() {
                let entry = sink_params.entry(s.f.name.as_str()).or_default();
                let before = entry.len();
                entry.extend(found);
                changed |= entry.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Emission: a call site is flagged when a tainted value occupies a
    // sink position — the site is where nondeterminism provably enters
    // the mutation chain.
    let mut findings: BTreeSet<ProgramFinding> = BTreeSet::new();
    for s in &states {
        let locals = s.tainted_locals(&ret_taint);
        for c in &s.f.taint.calls {
            let direct = is_direct_sink(&c.callee, &c.receiver, !c.args.is_empty());
            let callee_sinks = sink_params.get(c.callee.as_str());
            for (k, arg) in c.args.iter().enumerate() {
                let sink_position = direct || callee_sinks.is_some_and(|set| set.contains(&k));
                if !sink_position {
                    continue;
                }
                let tainted = arg.direct
                    || arg.callees.iter().any(|n| ret_taint.contains(n.as_str()))
                    || arg.uses.iter().any(|u| locals.contains(u.as_str()));
                if tainted {
                    findings.insert(ProgramFinding {
                        rule: "det-taint",
                        file_idx: s.f.file_idx,
                        line: c.line,
                        col: c.col,
                    });
                }
            }
        }
    }
    findings.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{scan_calls_with_held, scan_locks, scan_taint};
    use crate::lexer::{lex, Tok, TokKind};
    use crate::parse::parse_fns;

    fn program(src: &str) -> Vec<ProgramFn> {
        program_files(&[src])
    }

    /// Like [`program`], one source string per simulated file.
    fn program_files(srcs: &[&str]) -> Vec<ProgramFn> {
        let mut out = Vec::new();
        for (file_idx, src) in srcs.iter().enumerate() {
            let toks = lex(src);
            let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
            let items = parse_fns(&code);
            for item in &items {
                let mut raw = Vec::new();
                let mut lock = scan_locks(&code, item, &mut raw);
                let calls = crate::parse::calls_in(&code, item.body, &item.nested);
                lock.calls = scan_calls_with_held(&code, item, &calls).calls;
                out.push(ProgramFn {
                    name: item.name.clone(),
                    file_idx,
                    lock,
                    taint: scan_taint(&code, item),
                });
            }
        }
        out
    }

    #[test]
    fn direct_ab_ba_cycle_is_flagged() {
        let fns = program(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }\n",
        );
        let found = lock_order_findings(&fns);
        assert_eq!(
            found.len(),
            2,
            "both acquisition sites flagged: {:?}",
            found
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let fns = program(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }\n\
             fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }\n",
        );
        assert!(lock_order_findings(&fns).is_empty());
    }

    #[test]
    fn cycle_through_a_callee_is_flagged() {
        let fns = program(
            "fn f(&self) { let a = self.alpha.lock(); self.helper(); drop(a); }\n\
             fn helper(&self) { let b = self.beta.lock(); drop(b); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }\n",
        );
        let found = lock_order_findings(&fns);
        assert!(
            !found.is_empty(),
            "call-graph edge alpha->beta closes the cycle"
        );
    }

    #[test]
    fn unique_name_still_resolves_across_files() {
        // `helper` is defined once program-wide, in another file — a
        // unique name propagates regardless of where it lives.
        let fns = program_files(&[
            "fn f(&self) { let a = self.alpha.lock(); self.helper(); drop(a); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }\n",
            "fn helper(&self) { let b = self.beta.lock(); drop(b); }\n",
        ]);
        assert!(
            !lock_order_findings(&fns).is_empty(),
            "unique cross-file callee closes the cycle"
        );
    }

    #[test]
    fn ambiguous_cross_file_namesakes_do_not_bridge_locks() {
        // `snapshot` has two defs, neither in the caller's file. The
        // old global union would graft file 1's beta acquisition onto
        // the call under alpha and report a deadlock between types
        // that never touch each other's locks.
        let fns = program_files(&[
            "fn f(&self) { let a = self.alpha.lock(); self.shard.snapshot(); drop(a); }\n",
            "fn snapshot(&self) { let b = self.beta.lock(); drop(b); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }\n",
            "fn snapshot(&self) -> u32 { self.version }\n",
        ]);
        assert!(
            lock_order_findings(&fns).is_empty(),
            "coincidental namesakes must not manufacture a cycle"
        );
    }

    #[test]
    fn ambiguous_name_with_same_file_def_still_resolves() {
        // `snapshot` is ambiguous program-wide, but the caller's own
        // file defines one — method calls target the local impl, so
        // the real intra-module cycle must still be caught.
        let fns = program_files(&[
            "fn f(&self) { let a = self.alpha.lock(); self.snapshot(); drop(a); }\n\
             fn snapshot(&self) { let b = self.beta.lock(); drop(b); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }\n",
            "fn snapshot(&self) -> u32 { self.version }\n",
        ]);
        assert!(
            !lock_order_findings(&fns).is_empty(),
            "same-file def closes the cycle despite the foreign namesake"
        );
    }

    #[test]
    fn taint_reaching_a_sink_through_a_helper_is_flagged() {
        let fns = program(
            "fn now_ms() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }\n\
             fn train(&mut self) { let lr = now_ms(); self.opt.step(lr); }\n",
        );
        let found = det_taint_findings(&fns);
        assert_eq!(found.len(), 1, "{:?}", found);
    }

    #[test]
    fn taint_through_a_sink_param_is_flagged_at_the_entry_site() {
        let fns = program(
            "fn apply_lr(&mut self, lr: f64) { self.opt.step(lr); }\n\
             fn train(&mut self) { let t = Instant::now(); let lr = t.elapsed().as_secs_f64(); self.tune(lr); }\n\
             fn tune(&mut self, rate: f64) { self.apply_lr(rate); }\n",
        );
        let found = det_taint_findings(&fns);
        assert_eq!(
            found.len(),
            1,
            "flag where taint enters the chain: {:?}",
            found
        );
    }

    #[test]
    fn clean_values_into_sinks_are_fine() {
        let fns = program(
            "fn train(&mut self, lr: f64) { let scaled = lr * 0.5; self.opt.step(scaled); self.model.apply_batch(scaled); }\n",
        );
        assert!(det_taint_findings(&fns).is_empty());
    }

    #[test]
    fn telemetry_use_of_wallclock_without_sink_is_fine() {
        let fns = program(
            "fn record(&self) { let t = Instant::now(); self.stats.observe(t.elapsed()); }\n",
        );
        assert!(det_taint_findings(&fns).is_empty());
    }
}
