//! A hand-rolled, panic-free lexer for Rust-ish source text.
//!
//! The rule engine only needs a faithful *token stream* — identifiers,
//! punctuation, literals, and comments with exact source spans — not a
//! parse tree. The lexer therefore accepts arbitrary byte soup: on
//! malformed input (unterminated strings or block comments, stray
//! characters) it degrades to best-effort tokens instead of failing,
//! because a linter that crashes on the code it is judging is worse than
//! useless. Two properties are load-bearing and covered by seeded
//! property tests:
//!
//! * **No panics**, ever, on any input string.
//! * **Exact spans**: every token's `text` is exactly
//!   `source[offset..offset + text.len()]`, and offsets are strictly
//!   monotone, so findings can always be mapped back to file:line spans.
//!
//! String/char literals and comments are tokenized as single units, which
//! is what makes the downstream rules trustworthy: a `HashMap` mentioned
//! inside a string literal or a doc comment is *not* a determinism
//! violation.

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unwrap`, `static`, `r#mod`).
    Ident,
    /// Numeric literal (`0`, `1.5e-3`, `0xff_u32`).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`, `'a`).
    Lifetime,
    /// `//` line comment or `/* … */` block comment (doc or not).
    Comment,
    /// A single punctuation byte (`.`, `(`, `!`, …).
    Punct,
}

/// One source token with its exact span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The exact source slice of the token.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
    /// Byte offset of the token's first byte.
    pub offset: usize,
}

impl Tok {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == p as u8
    }
}

/// Tokenizes `source`. Total: every byte lands either in a token or in
/// inter-token whitespace; the function never panics.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run(source)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/column. UTF-8 continuation bytes
    /// do not advance the column, so columns count whole characters for
    /// ASCII and are merely consistent for multi-byte text.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn run(mut self, source: &str) -> Vec<Tok> {
        let mut toks = Vec::new();
        while let Some(b) = self.peek() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => TokKind::Str,
                b'b' if self.peek_at(1) == Some(b'\'') => {
                    self.bump(); // `b`
                    self.char_literal();
                    TokKind::Char
                }
                b'"' => {
                    self.string_literal();
                    TokKind::Str
                }
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                _ if b >= 0x80 => self.ident(), // non-ASCII identifier-ish run
                _ => {
                    self.bump();
                    TokKind::Punct
                }
            };
            // `start < self.pos` always holds (every arm bumps at least
            // once), so the loop terminates and spans are monotone.
            debug_assert!(self.pos > start);
            toks.push(Tok {
                kind,
                text: source
                    .get(start..self.pos)
                    .unwrap_or_default() // unreachable: bump respects char boundaries
                    .to_string(),
                line,
                col,
                offset: start,
            });
        }
        toks
    }

    fn line_comment(&mut self) -> TokKind {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        TokKind::Comment
    }

    fn block_comment(&mut self) -> TokKind {
        self.bump(); // `/`
        self.bump(); // `*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: comment runs to EOF
            }
        }
        TokKind::Comment
    }

    /// If positioned at `r"`, `r#"`, `br"`, `b"`-style raw/byte string
    /// openers (excluding plain `b'…'`), consumes the literal and returns
    /// true. `r#ident` raw identifiers return false and are lexed as
    /// identifiers.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = 0usize;
        if self.peek_at(i) == Some(b'b') {
            i += 1;
        }
        let raw = self.peek_at(i) == Some(b'r');
        if raw {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.peek_at(i + hashes) == Some(b'#') {
            hashes += 1;
        }
        if !raw && hashes > 0 {
            return false; // `b#` is not a string opener
        }
        if self.peek_at(i + hashes) != Some(b'"') || (!raw && hashes > 0) {
            return false;
        }
        if !raw && i == 0 {
            return false; // plain `"` is handled by string_literal
        }
        // Consume prefix, hashes, and opening quote.
        for _ in 0..(i + hashes + 1) {
            self.bump();
        }
        if raw {
            // Raw string: ends at `"` followed by `hashes` hashes, no
            // escape processing.
            'scan: while let Some(b) = self.peek() {
                self.bump();
                if b == b'"' {
                    for h in 0..hashes {
                        if self.peek_at(h) != Some(b'#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            self.string_body();
        }
        true
    }

    fn string_literal(&mut self) {
        self.bump(); // opening `"`
        self.string_body();
    }

    /// Consumes an escaped string body up to and including the closing
    /// quote (or EOF when unterminated).
    fn string_body(&mut self) {
        while let Some(b) = self.peek() {
            self.bump();
            match b {
                b'"' => break,
                b'\\' => self.bump(), // skip the escaped byte
                _ => {}
            }
        }
    }

    /// Distinguishes `'a'` / `'\n'` (char literals) from `'a` /
    /// `'static` (lifetimes): after the quote, an identifier run *not*
    /// followed by a closing quote is a lifetime.
    fn char_or_lifetime(&mut self) -> TokKind {
        let is_ident_byte = |b: u8| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80;
        if self.peek_at(1).is_some_and(is_ident_byte) && self.peek_at(1) != Some(b'\\') {
            // Scan the identifier run after the quote.
            let mut n = 1usize;
            while self.peek_at(n).is_some_and(is_ident_byte) {
                n += 1;
            }
            if self.peek_at(n) != Some(b'\'') {
                // Lifetime: consume quote + identifier run.
                for _ in 0..n {
                    self.bump();
                }
                return TokKind::Lifetime;
            }
        }
        self.char_literal();
        TokKind::Char
    }

    /// Consumes a char literal starting at `'`, tolerating escapes and
    /// unterminated input (stops at EOL so a stray quote cannot swallow
    /// the rest of the file).
    fn char_literal(&mut self) {
        self.bump(); // opening `'`
        while let Some(b) = self.peek() {
            self.bump();
            match b {
                b'\'' => break,
                b'\\' => self.bump(),
                b'\n' => break, // stray quote: don't eat the next line
                _ => {}
            }
        }
    }

    fn number(&mut self) -> TokKind {
        // Digits, underscores, type suffixes, hex letters, exponents; a
        // `.` joins only when followed by a digit (so `0..n` stays three
        // tokens and `1.5` stays one).
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    let is_exp = b == b'e' || b == b'E';
                    self.bump();
                    if is_exp && matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                b'.' if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => self.bump(),
                _ => break,
            }
        }
        TokKind::Number
    }

    fn ident(&mut self) -> TokKind {
        // `r#ident` raw identifiers keep their prefix.
        if self.peek() == Some(b'r') && self.peek_at(1) == Some(b'#') {
            self.bump();
            self.bump();
        }
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("foo.bar()");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "bar".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_swallow_contents() {
        let toks = kinds(r#"let s = "HashMap::unwrap() // not code";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "HashMap" && t != "unwrap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks[0], (TokKind::Str, r#""a\"b""#.into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"r#"inner "quoted" text"# tail"###);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("r#mod x");
        assert_eq!(toks[0], (TokKind::Ident, "r#mod".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'static '\\n' &'a str");
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1], (TokKind::Lifetime, "'static".into()));
        assert_eq!(toks[2].0, TokKind::Char);
        assert_eq!(toks[4], (TokKind::Lifetime, "'a".into()));
    }

    #[test]
    fn comments_are_single_tokens() {
        let toks = kinds("a // unwrap() here\nb /* HashMap\nnested /* deep */ */ c");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Comment).count(),
            2
        );
    }

    #[test]
    fn raw_string_hash_counts_must_match() {
        // `r##"…"##` ignores a lone `"#` inside; zero-hash `r"…"` ends
        // at the first quote.
        let toks = kinds(r####"r##"has "# inside"## after"####);
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[0].1.ends_with("\"##"));
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));

        let toks = kinds(r#"r"plain" x"#);
        assert_eq!(toks[0], (TokKind::Str, "r\"plain\"".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_byte_strings_are_strings() {
        let toks = kinds(r###"br#"bytes "q" here"# tail"###);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn multiline_raw_string_advances_lines() {
        let toks = lex("r#\"a\nb\nc\"# x");
        assert_eq!(toks[0].kind, TokKind::Str);
        let x = &toks[1];
        assert_eq!((x.text.as_str(), x.line), ("x", 3));
    }

    #[test]
    fn deeply_nested_block_comments_with_deceptive_content() {
        // Quotes and `/*` openers inside the comment must not confuse
        // depth tracking; idents inside never surface as tokens.
        let toks = kinds("a /* 1 /* 2 /* \"not a str\" unwrap() */ 2 */ 1 */ b");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Str));
    }

    #[test]
    fn line_comment_inside_block_comment_does_not_end_it() {
        let toks = kinds("a /* x // not the end\nstill comment */ b");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn lifetime_ticks_in_generics_and_wildcards() {
        let toks = kinds("Vec<'a> fn f<'de>(x: &'_ str) {}");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'de", "'_"]);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Char));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "'x", "r#\"open", "b\"xyz", "\\"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("0..n 1.5 0xff_u32");
        assert_eq!(toks[0], (TokKind::Number, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Ident, "n".into()));
        assert_eq!(toks[4], (TokKind::Number, "1.5".into()));
        assert_eq!(toks[5], (TokKind::Number, "0xff_u32".into()));
    }

    #[test]
    fn spans_match_source() {
        let src = "fn main() { let x = \"s\"; } // done";
        for t in lex(src) {
            assert_eq!(&src[t.offset..t.offset + t.text.len()], t.text);
        }
    }

    #[test]
    fn lines_and_cols_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
