//! Deterministic workspace traversal: which files the gate scans.
//!
//! The walk is sorted at every directory level so the findings list —
//! and therefore the rendered baseline — is byte-identical across runs
//! and machines (the linter holds itself to its own determinism rules).

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "bench_results"];

/// Path prefixes (workspace-relative) excluded from scanning: the lint
/// crate's rule fixtures and the deliberately-broken fixture workspace
/// are violations *by design*.
const SKIP_PREFIXES: &[&str] = &[
    "crates/lint/tests/fixtures/",
    "crates/lint/tests/fixture_tree/",
];

/// A file selected for scanning.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path on disk.
    pub disk_path: PathBuf,
    /// Workspace-relative `/`-separated path used in findings.
    pub rel_path: String,
    /// Whether this is a `Cargo.toml` (manifest rules) or `.rs` source.
    pub is_manifest: bool,
}

/// Collects every `.rs` and `Cargo.toml` under `root`, sorted, skipping
/// build output, VCS metadata, and the lint fixtures.
///
/// # Errors
///
/// Returns the first I/O failure with the path that caused it.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    descend(root, root, &mut out)?;
    // Final sort by relative path: directory traversal order and string
    // order disagree on names like `ops` vs `ops.rs`, and the report and
    // baseline must not depend on which the filesystem happens to yield.
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn descend(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {}", dir.display(), e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(
            entry
                .map_err(|e| format!("read_dir {}: {}", dir.display(), e))?
                .path(),
        );
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let rel = rel_path(root, &path);
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                descend(root, &path, out)?;
            }
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            out.push(SourceFile {
                disk_path: path,
                rel_path: rel,
                is_manifest: name == "Cargo.toml",
            });
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path of `path` under `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root: the nearest ancestor of `start` (inclusive)
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_skips_fixtures() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(&here).expect("lint crate lives inside the workspace");
        let files = workspace_files(&root).expect("workspace scan succeeds");
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/walk.rs"));
        assert!(files
            .iter()
            .any(|f| f.rel_path == "Cargo.toml" && f.is_manifest));
        assert!(
            !files.iter().any(|f| f.rel_path.contains("tests/fixtures/")),
            "fixture violations must not be scanned"
        );
        assert!(
            !files
                .iter()
                .any(|f| f.rel_path.contains("tests/fixture_tree/")),
            "the deliberately-broken fixture workspace must not be scanned"
        );
        assert!(
            files
                .iter()
                .any(|f| f.rel_path == "crates/lint/tests/fixtures.rs"),
            "the fixture *driver* is ordinary code and is scanned"
        );
        assert!(!files.iter().any(|f| f.rel_path.starts_with("target")));
        // Sorted ⇒ deterministic report and baseline ordering.
        let mut sorted = files.iter().map(|f| f.rel_path.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(
            sorted,
            files.iter().map(|f| f.rel_path.clone()).collect::<Vec<_>>()
        );
    }
}
