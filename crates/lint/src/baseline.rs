//! Checked-in baseline support: CI fails only on *new* violations.
//!
//! A baseline entry is keyed by `(rule, file, snippet)` — deliberately
//! **not** by line number, so unrelated edits that shift a baselined
//! finding up or down the file do not break CI. A finding is *new* when
//! more instances of its key exist in the tree than the baseline
//! records; fixing a baselined finding never fails the gate (the stale
//! entry is reported so the baseline can be re-tightened with
//! `--write-baseline`).

use cascade_util::Json;

use crate::engine::Finding;

/// One baselined finding class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Normalized source line.
    pub snippet: String,
    /// How many identical instances are tolerated.
    pub count: usize,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Tolerated finding classes.
    pub entries: Vec<BaselineEntry>,
}

/// The result of diffing current findings against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Diff {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings absorbed by baseline entries.
    pub baselined: usize,
    /// Baseline entries (rule/file/snippet) with fewer live instances
    /// than recorded — candidates for `--write-baseline` re-tightening.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {}", e))?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline is missing the \"entries\" array")?;
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry missing string field \"{}\"", k))
            };
            out.push(BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                snippet: field("snippet")?,
                count: e.get("count").and_then(Json::as_usize).unwrap_or(1),
            });
        }
        Ok(Baseline { entries: out })
    }

    /// Renders the baseline as pretty-stable JSON (one entry per line,
    /// sorted), so diffs of the checked-in file stay reviewable.
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.snippet).cmp(&(&b.file, &b.rule, &b.snippet)));
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            let obj = Json::Obj(vec![
                ("rule".into(), Json::from(e.rule.as_str())),
                ("file".into(), Json::from(e.file.as_str())),
                ("snippet".into(), Json::from(e.snippet.as_str())),
                ("count".into(), Json::from(e.count)),
            ]);
            out.push_str("    ");
            out.push_str(&obj.to_string());
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Builds a baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for f in findings {
            match entries
                .iter_mut()
                .find(|e| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet)
            {
                Some(e) => e.count += 1,
                None => entries.push(BaselineEntry {
                    rule: f.rule.to_string(),
                    file: f.file.clone(),
                    snippet: f.snippet.clone(),
                    count: 1,
                }),
            }
        }
        Baseline { entries }
    }

    /// Splits `findings` into baselined and new, and reports stale
    /// entries. Findings beyond an entry's `count` are new (the first
    /// `count` instances, in file order, are absorbed).
    pub fn diff(&self, findings: &[Finding]) -> Diff {
        let mut remaining: Vec<(usize, &BaselineEntry)> =
            self.entries.iter().map(|e| (e.count, e)).collect();
        let mut diff = Diff::default();
        for f in findings {
            let slot = remaining.iter_mut().find(|(left, e)| {
                *left > 0 && e.rule == f.rule && e.file == f.file && e.snippet == f.snippet
            });
            match slot {
                Some((left, _)) => {
                    *left -= 1;
                    diff.baselined += 1;
                }
                None => diff.new.push(f.clone()),
            }
        }
        for (left, e) in remaining {
            if left > 0 {
                let mut stale = e.clone();
                stale.count = left;
                diff.stale.push(stale);
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            col: 1,
            snippet: snippet.into(),
            why: "",
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = Baseline::from_findings(&[
            finding("panic-unwrap", "crates/core/src/a.rs", "x.unwrap()"),
            finding("panic-unwrap", "crates/core/src/a.rs", "x.unwrap()"),
            finding(
                "det-hash-iter",
                "crates/nn/src/b.rs",
                "use std::collections::HashMap;",
            ),
        ]);
        let parsed = Baseline::parse(&b.render()).expect("render emits valid baseline JSON");
        assert_eq!(parsed.entries.len(), 2);
        let uw = parsed
            .entries
            .iter()
            .find(|e| e.rule == "panic-unwrap")
            .expect("unwrap entry survives the round trip");
        assert_eq!(uw.count, 2);
    }

    #[test]
    fn diff_flags_only_excess_findings() {
        let b = Baseline::from_findings(&[finding("panic-unwrap", "f.rs", "x.unwrap()")]);
        let current = [
            finding("panic-unwrap", "f.rs", "x.unwrap()"),
            finding("panic-unwrap", "f.rs", "x.unwrap()"),
            finding("panic-macro", "f.rs", "panic!(\"no\")"),
        ];
        let d = b.diff(&current);
        assert_eq!(d.baselined, 1);
        assert_eq!(d.new.len(), 2);
        assert!(d.stale.is_empty());
    }

    #[test]
    fn diff_reports_stale_entries_without_failing() {
        let b = Baseline::from_findings(&[
            finding("panic-unwrap", "f.rs", "x.unwrap()"),
            finding("panic-unwrap", "f.rs", "x.unwrap()"),
        ]);
        let d = b.diff(&[finding("panic-unwrap", "f.rs", "x.unwrap()")]);
        assert!(d.new.is_empty());
        assert_eq!(d.baselined, 1);
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].count, 1);
    }

    #[test]
    fn line_moves_do_not_create_new_findings() {
        let b = Baseline::from_findings(&[finding("panic-unwrap", "f.rs", "x.unwrap()")]);
        let mut moved = finding("panic-unwrap", "f.rs", "x.unwrap()");
        moved.line = 999;
        assert!(b.diff(&[moved]).new.is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"version\":1}").is_err());
        assert!(Baseline::parse("{\"entries\":[{\"rule\":1}]}").is_err());
    }
}
