//! The `policy-registry-dep` rule: every dependency in every manifest
//! must be a path-internal `cascade-*` crate (the zero-dependency
//! policy; see DESIGN.md). This duplicates `tests/no_registry_deps.rs`
//! on purpose — the lint gate runs as one CI step with one report,
//! whereas the test belongs to the root crate's suite; both must agree.

use crate::engine::Finding;
use crate::rules::rule;

/// TOML section headers whose entries declare dependencies.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Checks one `Cargo.toml` for non-cascade, non-path dependencies.
pub fn check_manifest(path: &str, text: &str) -> Vec<Finding> {
    let Some(spec) = rule("policy-registry-dep") else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    let mut flag = |line_no: usize, raw: &str| {
        let mut snippet = raw.split_whitespace().collect::<Vec<_>>().join(" ");
        if snippet.len() > 120 {
            snippet.truncate(117);
            snippet.push_str("...");
        }
        findings.push(Finding {
            rule: spec.id,
            file: path.to_string(),
            line: line_no as u32,
            col: 1,
            snippet,
            why: spec.why,
        });
    };
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let header = header.trim_start_matches('[').trim_end_matches(']');
            // `[dependencies.foo]` / `[target.'cfg(..)'.dependencies.foo]`
            // name the dependency in the header itself.
            if let Some((section, name)) = header.rsplit_once('.') {
                if DEP_SECTIONS.iter().any(|s| section.ends_with(s)) && !name.starts_with("cascade")
                {
                    flag(idx + 1, raw);
                }
            }
            in_dep_section = DEP_SECTIONS.iter().any(|s| header.ends_with(s));
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let name = line.split('=').next().unwrap_or("").trim();
        if !name.starts_with("cascade") {
            flag(idx + 1, raw);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_internal_cascade_deps_pass() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\ncascade-util.workspace = true\n\
                    cascade-core = { path = \"../core\" }\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_deps_are_flagged() {
        let toml = "[dependencies]\nrand = \"0.8\"\ncascade-util.workspace = true\n";
        let f = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "policy-registry-dep");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn dotted_section_headers_are_flagged() {
        let toml = "[dependencies.serde_like]\nversion = \"1\"\n";
        let f = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn dev_dependencies_are_covered_and_comments_ignored() {
        let toml =
            "[dev-dependencies]\n# proptest would be handy here\ncascade-util.workspace = true\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }
}
