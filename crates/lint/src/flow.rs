//! Intraprocedural flow analyses over parsed function bodies.
//!
//! Three scanners run per function (see [`crate::parse`] for the item
//! parser and [`crate::callgraph`] for the interprocedural passes built
//! on the facts extracted here):
//!
//! * **Guard/lock scan** — tracks `let g = x.lock()/.read()/.write()`
//!   guard bindings through real scopes (shadowing, `drop`, block exit),
//!   flags a guard live across a blocking call
//!   (`conc-guard-across-blocking`), and records lock-acquisition order
//!   facts (which resources were held when each lock was taken or each
//!   call was made) for the interprocedural `conc-lock-order` cycle
//!   detection.
//! * **Arena balance** — follows each `let v = …take_*(…)…` arena
//!   binding and flags paths out of the function (early `return`, `?`,
//!   scope end, end of body) on which the buffer was neither recycled,
//!   returned, nor moved into a call (`arena-take-balance`).
//! * **Taint facts** — records, per function, which local bindings are
//!   initialized from wall-clock/hash-iteration sources, what each
//!   `return`/trailing expression mentions, and every call with the
//!   identifiers each argument uses, for the interprocedural
//!   `det-taint` propagation.
//!
//! All three are linear-scan approximations, not dataflow lattices:
//! consumption or release observed anywhere earlier in token order
//! counts for every later path. Each heuristic's supported shapes are
//! pinned by fixtures; the escape hatch for the rest is, as always, a
//! reasoned suppression.

use crate::lexer::{Tok, TokKind};
use crate::parse::{calls_in, in_ranges, receiver_chain, Call, FnItem};

/// Method names that block the calling thread: channel ops, thread
/// joins, fsync, socket accept, and condvar waits.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "join",
    "sync_all",
    "sync_data",
    "accept",
    "wait",
    "wait_timeout",
];

/// Lock-acquisition order facts for one function, consumed by
/// [`crate::callgraph::lock_order_findings`].
#[derive(Clone, Debug, Default)]
pub struct LockFacts {
    /// `(held, acquired, line, col)`: `acquired` was locked while
    /// `held` was live, at the given location.
    pub edges: Vec<(String, String, u32, u32)>,
    /// Every call made by this function: `(callee, resources held at
    /// the call, line, col)`.
    pub calls: Vec<(String, Vec<String>, u32, u32)>,
    /// Every lock resource this function acquires directly.
    pub acquires: Vec<String>,
}

/// A live lock guard.
struct Guard {
    /// Binding name; `None` for a temporary held to end of statement.
    name: Option<String>,
    resource: String,
    depth: usize,
}

/// A raw (pre-filtering) finding produced by a flow analysis.
pub type RawFinding = (&'static str, u32, u32);

/// Whether the method call at `i` acquires a lock guard: `.lock()`,
/// `.read()`, or `.write()` **with empty parens** (`io::Write::write`
/// and `Read::read` always take a buffer argument, so the empty
/// argument list is the disambiguator).
fn is_lock_acquisition(code: &[&Tok], i: usize) -> bool {
    let t = code[i];
    (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && i > 0
        && code[i - 1].is_punct('.')
        && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        && code.get(i + 2).is_some_and(|n| n.is_punct(')'))
}

/// Whether the method call at `i` blocks. `join` is additionally
/// required to have empty parens so `Vec::<String>::join(", ")` never
/// fires.
fn is_blocking_call(code: &[&Tok], i: usize) -> bool {
    let t = code[i];
    if t.kind != TokKind::Ident
        || !BLOCKING_CALLS.contains(&t.text.as_str())
        || i == 0
        || !code[i - 1].is_punct('.')
        || !code.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        return false;
    }
    if t.text == "join" {
        return code.get(i + 2).is_some_and(|n| n.is_punct(')'));
    }
    true
}

/// Names the lock resource acquired at method-call index `i`: the
/// receiver chain joined with `.` (`self.state.lock()` → `"state"`),
/// or a position-unique placeholder for compound receivers.
fn lock_resource(code: &[&Tok], i: usize) -> String {
    let chain = receiver_chain(code, i);
    if chain.is_empty() {
        format!("<expr@{}:{}>", code[i].line, code[i].col)
    } else {
        chain.join(".")
    }
}

/// The binding of the `let` pattern starting at `j` (just past
/// `let [mut]`): the name token and the index where the initializer
/// scan should resume. Handles plain `name` (followed by `=`, `:`, or
/// `;`) and single-ident enum patterns (`Some(name)`, `Ok(name)`).
/// `None` for tuple, struct, and multi-binding patterns, which bind no
/// single trackable value.
fn binding_tok<'a>(code: &[&'a Tok], j: usize) -> Option<(&'a Tok, usize)> {
    let t = code.get(j).copied().filter(|n| n.kind == TokKind::Ident)?;
    let next = code.get(j + 1)?;
    if next.is_punct('(') {
        let inner = code
            .get(j + 2)
            .copied()
            .filter(|n| n.kind == TokKind::Ident)?;
        return code
            .get(j + 3)
            .filter(|p| p.is_punct(')'))
            .map(|_| (inner, j + 4));
    }
    if next.is_punct('=') || next.is_punct(':') || next.is_punct(';') {
        return Some((t, j + 1));
    }
    None
}

/// Token ranges (exclusive of the closing brace) of `move |…| …`
/// closure bodies inside `body`. A binding from the enclosing scope
/// mentioned inside one of these is captured **by value** — a move.
fn move_closure_bodies(code: &[&Tok], body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let (start, end) = body;
    let mut i = start;
    while i < end.min(code.len()) {
        if code[i].is_ident("move") && code.get(i + 1).is_some_and(|n| n.is_punct('|')) {
            // Parameters run to the next `|`.
            let mut k = i + 2;
            while k < end.min(code.len()) && !code[k].is_punct('|') {
                k += 1;
            }
            k += 1;
            let close = if code.get(k).is_some_and(|n| n.is_punct('{')) {
                crate::parse::match_brace(code, k)
            } else {
                // Expression body: runs to the first `,`, `;`, or
                // unmatched `)` at closure-relative nesting zero.
                let mut nest = 0usize;
                let mut m = k;
                while m < end.min(code.len()) {
                    let t = code[m];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        nest += 1;
                    } else if t.is_punct(']') || t.is_punct('}') {
                        nest = nest.saturating_sub(1);
                    } else if t.is_punct(')') {
                        if nest == 0 {
                            break;
                        }
                        nest -= 1;
                    } else if (t.is_punct(',') || t.is_punct(';')) && nest == 0 {
                        break;
                    }
                    m += 1;
                }
                m
            };
            ranges.push((k, close));
            i = k;
            continue;
        }
        i += 1;
    }
    ranges
}

/// The guard/lock scan: emits `conc-guard-across-blocking` raw findings
/// and returns the [`LockFacts`] for the interprocedural pass.
pub fn scan_locks(code: &[&Tok], item: &FnItem, raw: &mut Vec<RawFinding>) -> LockFacts {
    let mut facts = LockFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let (start, end) = item.body;
    let mut depth = 0usize;
    let mut i = start;
    while i < end.min(code.len()) {
        if in_ranges(&item.nested, i) {
            i += 1;
            continue;
        }
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(';') {
            guards.retain(|g| g.name.is_some());
        } else if t.is_ident("let") {
            // `let [mut] name = …;` — scan the initializer as one unit.
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some((name, after)) = binding_tok(code, j) {
                // Shadowing ends the previous guard of this name.
                guards.retain(|g| g.name.as_deref() != Some(&name.text));
                let mut k = after;
                let mut nest = 0usize;
                // `(resource, nest at acquisition)`: a lock taken inside
                // a nested block of the initializer
                // (`let next = { let rx = m.lock(); rx.recv() }`) dies
                // with that block; only nest-0 acquisitions become the
                // binding's own guard.
                let mut bound_resources: Vec<(String, usize)> = Vec::new();
                while let Some(n) = code.get(k).filter(|_| k < end) {
                    if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
                        nest += 1;
                    } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
                        nest = nest.saturating_sub(1);
                        bound_resources.retain(|(_, at)| *at <= nest);
                    } else if n.is_punct(';') && nest == 0 {
                        break;
                    } else if is_lock_acquisition(code, k) {
                        let resource = lock_resource(code, k);
                        for g in &guards {
                            facts
                                .edges
                                .push((g.resource.clone(), resource.clone(), n.line, n.col));
                        }
                        for (held, _) in &bound_resources {
                            facts
                                .edges
                                .push((held.clone(), resource.clone(), n.line, n.col));
                        }
                        facts.acquires.push(resource.clone());
                        bound_resources.push((resource, nest));
                    } else if is_blocking_call(code, k)
                        && (!guards.is_empty() || !bound_resources.is_empty())
                    {
                        raw.push(("conc-guard-across-blocking", n.line, n.col));
                    }
                    k += 1;
                }
                for (resource, _) in bound_resources {
                    guards.push(Guard {
                        name: Some(name.text.clone()),
                        resource,
                        depth,
                    });
                }
                i = k;
                continue;
            }
        } else if t.is_ident("drop") && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(arg) = code.get(i + 2) {
                guards.retain(|g| g.name.as_deref() != Some(&arg.text));
            }
        } else if is_lock_acquisition(code, i) {
            // Temporary guard: held to the end of the statement.
            let resource = lock_resource(code, i);
            for g in &guards {
                facts
                    .edges
                    .push((g.resource.clone(), resource.clone(), t.line, t.col));
            }
            facts.acquires.push(resource.clone());
            guards.push(Guard {
                name: None,
                resource,
                depth,
            });
        } else if is_blocking_call(code, i) && !guards.is_empty() {
            raw.push(("conc-guard-across-blocking", t.line, t.col));
        }
        i += 1;
    }
    facts
}

/// Second guard pass dedicated to call sites: records, for every call
/// in the body, which bound-guard resources were live at that point.
pub fn scan_calls_with_held(code: &[&Tok], item: &FnItem, calls: &[Call]) -> LockFacts {
    let mut facts = LockFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let (start, end) = item.body;
    let mut depth = 0usize;
    let mut call_iter = calls.iter().peekable();
    let mut i = start;
    while i < end.min(code.len()) {
        if in_ranges(&item.nested, i) {
            i += 1;
            continue;
        }
        let t = code[i];
        while call_iter.peek().is_some_and(|c| c.name_idx < i) {
            call_iter.next();
        }
        if let Some(c) = call_iter.peek() {
            if c.name_idx == i {
                facts.calls.push((
                    c.callee.clone(),
                    guards.iter().map(|g| g.resource.clone()).collect(),
                    c.line,
                    c.col,
                ));
            }
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(';') {
            guards.retain(|g| g.name.is_some());
        } else if t.is_ident("drop") && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(arg) = code.get(i + 2) {
                guards.retain(|g| g.name.as_deref() != Some(&arg.text));
            }
        } else if is_lock_acquisition(code, i) {
            let resource = lock_resource(code, i);
            // Attribute the guard to the `let` binding when the
            // statement is one: walk back to see if this statement
            // started with `let name =`.
            let name = binding_name_of_statement(code, start, i);
            guards.push(Guard {
                name,
                resource,
                depth,
            });
        } else if t.is_ident("let") {
            if let Some(name) = code
                .get(i + 1)
                .filter(|n| n.kind == TokKind::Ident && !n.is_ident("mut"))
                .or_else(|| code.get(i + 2).filter(|n| n.kind == TokKind::Ident))
            {
                guards.retain(|g| g.name.as_deref() != Some(&name.text));
            }
        }
        i += 1;
    }
    facts
}

/// The `let` binding name of the statement containing token `i`, if the
/// statement begins with `let [mut] name =`.
fn binding_name_of_statement(code: &[&Tok], body_start: usize, i: usize) -> Option<String> {
    // Walk backwards to the previous statement boundary.
    let mut k = i;
    while k > body_start {
        let t = code[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        k -= 1;
    }
    if !code.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut j = k + 1;
    if code.get(j).is_some_and(|n| n.is_ident("mut")) {
        j += 1;
    }
    code.get(j)
        .filter(|n| n.kind == TokKind::Ident)
        .map(|n| n.text.clone())
}

/// A live arena `take_*` binding.
struct TakeBinding {
    name: String,
    depth: usize,
    /// Token index of the binding's declaration, to tell enclosing-scope
    /// captures apart from closure-local bindings.
    decl: usize,
    line: u32,
    col: u32,
    consumed: bool,
}

/// Whether the ident at `k` is an `arena::take_*(` call. The `arena::`
/// path is required: `take_*` *methods* (`node.take_grad_raw()`) hand
/// ownership to their caller's caller and are not pool checkouts.
fn is_arena_take(code: &[&Tok], k: usize) -> bool {
    code[k].kind == TokKind::Ident
        && code[k].text.starts_with("take_")
        && code.get(k + 1).is_some_and(|p| p.is_punct('('))
        && k >= 3
        && code[k - 1].is_punct(':')
        && code[k - 2].is_punct(':')
        && code[k - 3].is_ident("arena")
}

/// The arena-balance scan: flags `arena::take_*` bindings that can
/// leave the function unconsumed (`arena-take-balance`).
///
/// A binding is *consumed* by any later occurrence of its name in a
/// moving position — not behind `&`, and not as a method/index receiver
/// (`v.len()`, `v[i]`) — which covers `arena::recycle(v)`, `return v`,
/// `f(v)`, `Some(v)`, struct literals, and trailing expressions. Any
/// mention inside a `move` closure body also consumes: the closure
/// captures the buffer by value and owns its fate from then on.
pub fn scan_arena_balance(code: &[&Tok], item: &FnItem, raw: &mut Vec<RawFinding>) {
    let mut bindings: Vec<TakeBinding> = Vec::new();
    let (start, end) = item.body;
    let move_bodies = move_closure_bodies(code, item.body);
    let mut depth = 0usize;
    let mut i = start;
    while i < end.min(code.len()) {
        if in_ranges(&item.nested, i) {
            i += 1;
            continue;
        }
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            // Scope exit: a binding dying unconsumed leaks its buffer.
            for b in bindings.iter().filter(|b| b.depth > depth && !b.consumed) {
                raw.push(("arena-take-balance", b.line, b.col));
            }
            bindings.retain(|b| b.depth <= depth);
        } else if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some((name, after)) = binding_tok(code, j) {
                // Scan the initializer for a take_* call. Only nest-0
                // takes bind the buffer to this name: a take inside a
                // nested block (`let gb = if cond { …take_copy(…)… }`)
                // belongs to the inner scope's own `let`.
                let mut k = after;
                let mut nest = 0usize;
                let mut takes = false;
                while let Some(n) = code.get(k).filter(|_| k < end) {
                    if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
                        nest += 1;
                    } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
                        nest = nest.saturating_sub(1);
                    } else if n.is_punct(';') && nest == 0 {
                        break;
                    } else if nest == 0 && is_arena_take(code, k) {
                        takes = true;
                    }
                    k += 1;
                }
                // Shadowing: the old buffer becomes unreachable.
                if let Some(old) = bindings.iter().find(|b| b.name == name.text && !b.consumed) {
                    raw.push(("arena-take-balance", old.line, old.col));
                }
                bindings.retain(|b| b.name != name.text);
                if takes {
                    bindings.push(TakeBinding {
                        name: name.text.clone(),
                        depth,
                        decl: j,
                        line: name.line,
                        col: name.col,
                        consumed: false,
                    });
                }
                // The initializer may itself consume other bindings
                // (`let w = combine(v)`), so fall through and let the
                // consumption logic re-walk it token by token.
            }
        } else if t.is_ident("return") || t.is_punct('?') {
            // Early exit. For `return`, first credit consumption inside
            // the return expression itself (`return v` is a move out).
            if t.is_ident("return") {
                let mut k = i + 1;
                let mut nest = 0usize;
                while let Some(n) = code.get(k).filter(|_| k < end) {
                    if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
                        nest += 1;
                    } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
                        nest = nest.saturating_sub(1);
                    } else if n.is_punct(';') && nest == 0 {
                        break;
                    } else if n.kind == TokKind::Ident {
                        mark_consumed(code, k, &mut bindings, &move_bodies);
                    }
                    k += 1;
                }
            }
            // A `return`/`?` inside a closure body exits the closure,
            // not the enclosing function: bindings of the enclosing
            // scope stay live there.
            let in_closure = move_bodies.iter().any(|&(s, e)| i >= s && i < e);
            for b in bindings.iter().filter(|b| !b.consumed) {
                if in_closure
                    && b.decl < i
                    && !move_bodies.iter().any(|&(s, e)| b.decl >= s && b.decl < e)
                {
                    continue;
                }
                raw.push(("arena-take-balance", t.line, t.col));
                let _ = b;
            }
        } else if t.kind == TokKind::Ident {
            mark_consumed(code, i, &mut bindings, &move_bodies);
        }
        i += 1;
    }
    // End of body: the trailing expression has already credited its
    // consumptions via the main loop.
    for b in bindings.iter().filter(|b| !b.consumed) {
        raw.push(("arena-take-balance", b.line, b.col));
    }
}

/// Marks the binding named by token `i` consumed when the occurrence is
/// a moving position, or any position inside a `move` closure body the
/// binding was declared outside of (capture by value).
fn mark_consumed(
    code: &[&Tok],
    i: usize,
    bindings: &mut [TakeBinding],
    move_bodies: &[(usize, usize)],
) {
    let t = code[i];
    let Some(b) = bindings
        .iter_mut()
        .find(|b| !b.consumed && b.name == t.text)
    else {
        return;
    };
    // Skip the binding occurrence itself (`let name = …`).
    if i >= 1 && (code[i - 1].is_ident("let") || code[i - 1].is_ident("mut")) {
        return;
    }
    if move_bodies
        .iter()
        .any(|&(s, e)| i >= s && i < e && b.decl < s)
    {
        b.consumed = true;
        return;
    }
    let borrowed = i >= 1 && code[i - 1].is_punct('&');
    let next = code.get(i + 1);
    let non_moving_use = next.is_some_and(|n| n.is_punct('.') || n.is_punct('['));
    // `v = …` reassignment and `v == w` comparison are uses, not moves.
    let assigned = next.is_some_and(|n| n.is_punct('='));
    if !borrowed && !non_moving_use && !assigned {
        b.consumed = true;
    }
}

/// Wall-clock / hash-state type sources for `det-taint`.
const TAINT_TYPE_SOURCES: &[&str] = &["Instant", "SystemTime", "DefaultHasher", "RandomState"];

/// Hash-container iteration methods (sources only next to a
/// `HashMap`/`HashSet` mention in the same expression).
const HASH_ITER_METHODS: &[&str] = &["iter", "keys", "values", "drain", "into_iter"];

/// One `let` binding's taint-relevant shape.
#[derive(Clone, Debug)]
pub struct LetInfo {
    /// Binding name.
    pub name: String,
    /// The initializer mentions a taint source directly.
    pub direct: bool,
    /// Call names appearing in the initializer (for return-taint
    /// propagation).
    pub callees: Vec<String>,
    /// Other identifiers the initializer mentions (taint flows through
    /// local aliasing).
    pub uses: Vec<String>,
    /// 1-based line of the binding.
    pub line: u32,
}

/// What a `return` (or trailing) expression mentions.
#[derive(Clone, Debug)]
pub struct RetInfo {
    /// Direct taint source in the expression.
    pub direct: bool,
    /// Call names in the expression.
    pub callees: Vec<String>,
    /// Identifiers the expression mentions.
    pub uses: Vec<String>,
}

/// One argument of a call, summarized for taint propagation.
#[derive(Clone, Debug)]
pub struct ArgInfo {
    /// Identifiers the argument mentions.
    pub uses: Vec<String>,
    /// Call names inside the argument.
    pub callees: Vec<String>,
    /// The argument mentions a taint source directly
    /// (`m.step(t.elapsed())`).
    pub direct: bool,
}

/// A call site, summarized for taint propagation (token-free so the
/// interprocedural pass needs no source access).
#[derive(Clone, Debug)]
pub struct CallInfo {
    /// Callee name (last path/method segment).
    pub callee: String,
    /// Receiver / path chain before the name, `self` stripped.
    pub receiver: Vec<String>,
    /// Per-argument summaries.
    pub args: Vec<ArgInfo>,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// Taint facts for one function.
#[derive(Clone, Debug, Default)]
pub struct TaintFacts {
    /// Parameter binding names, in order.
    pub params: Vec<String>,
    /// `let` bindings in body order.
    pub lets: Vec<LetInfo>,
    /// Return and trailing expressions.
    pub rets: Vec<RetInfo>,
    /// Every call site in the body.
    pub calls: Vec<CallInfo>,
}

/// Whether `[start, end)` mentions a taint source directly: a
/// wall-clock/hasher type, `.elapsed()`, or hash-container iteration —
/// either in one expression (`HashMap::from(..).values()`) or via a
/// local known to hold a hash container (`cache.values()` with
/// `cache` in `containers`).
fn range_has_source(
    code: &[&Tok],
    start: usize,
    end: usize,
    containers: &std::collections::BTreeSet<String>,
) -> bool {
    let mut has_hash_container = false;
    let mut has_hash_iter = false;
    for k in start..end.min(code.len()) {
        let t = code[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if TAINT_TYPE_SOURCES.contains(&t.text.as_str()) {
            return true;
        }
        if t.is_ident("elapsed") && k > 0 && code[k - 1].is_punct('.') {
            return true;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            has_hash_container = true;
        }
        if HASH_ITER_METHODS.contains(&t.text.as_str()) && k > 0 && code[k - 1].is_punct('.') {
            has_hash_iter = true;
            // Iteration over a known hash-container local is a source
            // even with the container's construction statements away.
            if k >= 2 && containers.contains(&code[k - 2].text) {
                return true;
            }
        }
    }
    has_hash_container && has_hash_iter
}

/// Locals bound to a `HashMap`/`HashSet` value: a forward pre-pass over
/// the `let` statements of the body.
///
/// Classification is deliberately strict — the initializer *expression*
/// (after `=`) must begin with the container path (`HashMap::new()`,
/// `std::collections::HashSet::from(…)`) or be a plain alias/clone of
/// an already-known container. A `Vec<HashSet<_>>` built with `vec![…]`
/// is **not** a container: iterating the outer `Vec` is deterministic,
/// and the type annotation alone must not poison the binding.
fn hash_container_locals(code: &[&Tok], item: &FnItem) -> std::collections::BTreeSet<String> {
    let mut containers = std::collections::BTreeSet::new();
    let (start, end) = item.body;
    // Two passes pick up alias chains declared before their source only
    // under shadow-reordering, which the scanner does not model; mostly
    // this just makes in-order chains converge in one sweep.
    for _ in 0..2 {
        let mut i = start;
        while i < end.min(code.len()) {
            if in_ranges(&item.nested, i) {
                i += 1;
                continue;
            }
            if code[i].is_ident("let") {
                let mut j = i + 1;
                if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                    j += 1;
                }
                if let Some((name, after)) = binding_tok(code, j) {
                    let (expr_end, _) = statement_end(code, after, end);
                    // The expression starts past the `=` (a type
                    // annotation has no `=` of its own).
                    let eq = (after..expr_end.min(code.len())).find(|&k| code[k].is_punct('='));
                    if let Some(eq) = eq {
                        if container_expr(code, eq + 1, expr_end, &containers) {
                            containers.insert(name.text.clone());
                        }
                    }
                    i = expr_end;
                    continue;
                }
            }
            i += 1;
        }
    }
    containers
}

/// Whether the expression at `[s, e)` evaluates to a hash container:
/// starts with `[std::collections::]HashMap`/`HashSet`, or is a known
/// container local (optionally `.clone()`d).
fn container_expr(
    code: &[&Tok],
    s: usize,
    e: usize,
    containers: &std::collections::BTreeSet<String>,
) -> bool {
    let mut k = s;
    if code.get(k).is_some_and(|t| t.is_ident("std"))
        && code.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(k + 2).is_some_and(|t| t.is_punct(':'))
        && code.get(k + 3).is_some_and(|t| t.is_ident("collections"))
        && code.get(k + 4).is_some_and(|t| t.is_punct(':'))
        && code.get(k + 5).is_some_and(|t| t.is_punct(':'))
    {
        k += 6;
    }
    let Some(head) = code.get(k).filter(|t| t.kind == TokKind::Ident) else {
        return false;
    };
    if head.is_ident("HashMap") || head.is_ident("HashSet") {
        return true;
    }
    if !containers.contains(&head.text) {
        return false;
    }
    // `cache` or `cache.clone()` — anything longer is a computation.
    k + 1 >= e.min(code.len())
        || (code.get(k + 1).is_some_and(|t| t.is_punct('.'))
            && code.get(k + 2).is_some_and(|t| t.is_ident("clone")))
}

/// Summarizes a parsed [`Call`] for taint propagation.
fn call_info(code: &[&Tok], c: &Call, containers: &std::collections::BTreeSet<String>) -> CallInfo {
    CallInfo {
        callee: c.callee.clone(),
        receiver: c.receiver.clone(),
        args: c
            .arg_ranges
            .iter()
            .map(|&(s, e)| ArgInfo {
                uses: ident_names(code, s, e),
                callees: call_names(code, s, e),
                direct: range_has_source(code, s, e, containers),
            })
            .collect(),
        line: c.line,
        col: c.col,
    }
}

/// Extracts the taint facts for one function.
pub fn scan_taint(code: &[&Tok], item: &FnItem) -> TaintFacts {
    let containers = hash_container_locals(code, item);
    let mut facts = TaintFacts {
        params: item.params.clone(),
        calls: calls_in(code, item.body, &item.nested)
            .iter()
            .map(|c| call_info(code, c, &containers))
            .collect(),
        ..TaintFacts::default()
    };
    let (start, end) = item.body;
    let mut i = start;
    let mut last_stmt_start = start;
    let mut depth = 0usize;
    while i < end.min(code.len()) {
        if in_ranges(&item.nested, i) {
            i += 1;
            continue;
        }
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                last_stmt_start = i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            last_stmt_start = i + 1;
        } else if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some((name, after)) = binding_tok(code, j) {
                let (expr_end, _) = statement_end(code, after, end);
                facts.lets.push(LetInfo {
                    name: name.text.clone(),
                    direct: range_has_source(code, after, expr_end, &containers),
                    callees: call_names(code, after, expr_end),
                    uses: ident_names(code, after, expr_end),
                    line: name.line,
                });
                i = expr_end;
                continue;
            }
        } else if t.is_ident("return") {
            let (expr_end, _) = statement_end(code, i + 1, end);
            facts.rets.push(RetInfo {
                direct: range_has_source(code, i + 1, expr_end, &containers),
                callees: call_names(code, i + 1, expr_end),
                uses: ident_names(code, i + 1, expr_end),
            });
            i = expr_end;
            continue;
        }
        i += 1;
    }
    // Trailing expression: the tokens after the last top-level
    // statement boundary form the function's result.
    let tail = (last_stmt_start, end.min(code.len()));
    if tail.1 > tail.0 {
        facts.rets.push(RetInfo {
            direct: range_has_source(code, tail.0, tail.1, &containers),
            callees: call_names(code, tail.0, tail.1),
            uses: ident_names(code, tail.0, tail.1),
        });
    }
    facts
}

/// Index of the `;` ending the statement starting at `from` (nesting
/// aware), capped at `end`.
fn statement_end(code: &[&Tok], from: usize, end: usize) -> (usize, bool) {
    let mut nest = 0usize;
    let mut k = from;
    while k < end.min(code.len()) {
        let n = code[k];
        if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
            nest += 1;
        } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
            nest = nest.saturating_sub(1);
        } else if n.is_punct(';') && nest == 0 {
            return (k, true);
        }
        k += 1;
    }
    (k, false)
}

/// Call names (`ident (`) in a token range, macros excluded.
fn call_names(code: &[&Tok], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    for k in start..end.min(code.len()) {
        let t = code[k];
        if t.kind == TokKind::Ident && code.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            out.push(t.text.clone());
        }
    }
    out
}

/// All identifiers in a token range.
fn ident_names(code: &[&Tok], start: usize, end: usize) -> Vec<String> {
    code[start.min(code.len())..end.min(code.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_fns;

    fn scan(src: &str) -> (Vec<RawFinding>, Vec<LockFacts>) {
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let fns = parse_fns(&code);
        let mut raw = Vec::new();
        let mut facts = Vec::new();
        for f in &fns {
            facts.push(scan_locks(&code, f, &mut raw));
            scan_arena_balance(&code, f, &mut raw);
        }
        (raw, facts)
    }

    fn rules(src: &str) -> Vec<&'static str> {
        scan(src).0.into_iter().map(|(r, _, _)| r).collect()
    }

    #[test]
    fn guard_across_recv_fires_and_scoped_release_passes() {
        let bad = "fn f() { let g = m.lock(); rx.recv_timeout(d); let _ = g; }";
        assert_eq!(rules(bad), ["conc-guard-across-blocking"]);
        let scoped = "fn f() { { let g = m.lock(); let _ = g; } rx.recv(); }";
        assert!(rules(scoped).is_empty());
        let dropped = "fn f() { let g = m.lock(); drop(g); tx.send(1); }";
        assert!(rules(dropped).is_empty());
    }

    #[test]
    fn rwlock_read_write_guards_are_tracked() {
        let bad = "fn f(&self) { let snap = self.snapshot.read(); h.join(); let _ = snap; }";
        assert_eq!(rules(bad), ["conc-guard-across-blocking"]);
        // `write` with arguments is io::Write, not a lock.
        let io = "fn f() { let n = file.write(buf); tx.send(n); }";
        assert!(rules(io).is_empty());
        // `join` with arguments is slice join, not thread join.
        let sj = "fn f() { let g = m.lock(); let s = parts.join(sep); let _ = (g, s); }";
        assert!(rules(sj).is_empty());
    }

    #[test]
    fn shadowing_releases_the_old_guard() {
        let src = "fn f() { let g = m.lock(); let g = 1u32; tx.send(g); }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn lock_edges_record_acquisition_order() {
        let src = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }";
        let (_, facts) = scan(src);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].acquires, vec!["alpha", "beta"]);
        assert_eq!(facts[0].edges.len(), 1);
        assert_eq!(
            (facts[0].edges[0].0.as_str(), facts[0].edges[0].1.as_str()),
            ("alpha", "beta")
        );
    }

    #[test]
    fn arena_take_without_consumption_leaks() {
        let leak = "fn f(n: usize) { let v = arena::take_zeroed(n); v.fill(1.0); }";
        assert_eq!(rules(leak), ["arena-take-balance"]);
        let recycled =
            "fn f(n: usize) { let v = arena::take_zeroed(n); v.fill(1.0); arena::recycle(v); }";
        assert!(rules(recycled).is_empty());
    }

    #[test]
    fn returning_or_moving_the_buffer_discharges_it() {
        let returned = "fn f(n: usize) -> Vec<f32> { let v = arena::take_zeroed(n); v }";
        assert!(rules(returned).is_empty());
        let explicit = "fn f(n: usize) -> Vec<f32> { let v = arena::take_zeroed(n); return v; }";
        assert!(rules(explicit).is_empty());
        let moved = "fn f(n: usize) { let v = arena::take_zeroed(n); ctx.accumulate_owned(p, v); }";
        assert!(rules(moved).is_empty());
        let wrapped =
            "fn f(n: usize) -> Option<Vec<f32>> { let g = arena::take_zeroed(n); Some(g) }";
        assert!(rules(wrapped).is_empty());
    }

    #[test]
    fn early_return_before_recycle_leaks() {
        let src = "fn f(n: usize, bad: bool) { let v = arena::take_zeroed(n); if bad { return; } arena::recycle(v); }";
        assert_eq!(rules(src), ["arena-take-balance"]);
    }

    #[test]
    fn borrows_and_method_calls_do_not_discharge() {
        let src = "fn f(n: usize) -> usize { let v = arena::take_zeroed(n); helper(&v); v.len() }";
        assert_eq!(rules(src), ["arena-take-balance"]);
    }

    #[test]
    fn taint_facts_capture_sources_and_returns() {
        let toks = lex(
            "fn now_ms() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }\n\
             fn clean(x: f64) -> f64 { x * 2.0 }\n",
        );
        let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let fns = parse_fns(&code);
        let now = scan_taint(&code, &fns[0]);
        assert!(now.lets[0].direct, "Instant::now is a direct source");
        assert!(now
            .rets
            .iter()
            .any(|r| r.direct || r.uses.contains(&"t".into())));
        let clean = scan_taint(&code, &fns[1]);
        assert!(clean.lets.is_empty());
        assert!(clean.rets.iter().all(|r| !r.direct));
    }
}
