//! The rule registry: every invariant `cascade-lint` enforces, with its
//! identifier, rationale, and path scope.
//!
//! Rules are named and configurable on purpose: a finding always carries
//! a rule id that can be suppressed in place with
//! `// cascade-lint: allow(<rule>): <reason>` (the reason is mandatory —
//! a suppression without one is itself a finding). Scopes are path
//! prefixes relative to the workspace root, so e.g. determinism rules
//! bind only the compute-path crates whose schedules must stay
//! bit-identical at staleness 0 (see DESIGN.md §6 and §8), while telemetry
//! (`core/src/instrument.rs`) and the measurement crates are allowlisted.

/// Identifier, scope, and documentation of one lint rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleSpec {
    /// Stable rule id, used in findings, baselines, and suppressions.
    pub id: &'static str,
    /// Path prefixes (workspace-relative, `/`-separated) the rule binds.
    /// Empty means every scanned file.
    pub scopes: &'static [&'static str],
    /// Path prefixes exempted even inside a scope.
    pub allowed_paths: &'static [&'static str],
    /// Whether the rule also fires inside `#[cfg(test)]` / `#[test]`
    /// code. Panic-safety rules don't: tests are supposed to unwrap.
    pub applies_to_tests: bool,
    /// One-line rationale shown with each finding.
    pub why: &'static str,
}

/// Crates whose compute paths must stay deterministic: the pipelined
/// executor's staleness-0 bit-identity guarantee (DESIGN.md §6) is only
/// checkable if no iteration-order or wall-clock dependence leaks into
/// the schedule these crates produce. The serving engine is bound too —
/// its restart guarantee (snapshot + WAL replay reproduces memories
/// bit-for-bit, DESIGN.md §11) dies the moment a clock or hash order
/// leaks into ingest; only its telemetry module may read clocks.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/dist/src/",
    "crates/exec/src/",
    "crates/models/src/",
    "crates/nn/src/",
    // The scenario generator's whole contract is seed-addressable
    // regeneration (leader and follower re-synthesize the same recipe
    // bit-identically, DESIGN.md §13); a clock or hash order anywhere in
    // it breaks replay across hosts. Only its RSS/stopwatch sampler may
    // read clocks.
    "crates/scenario/src/",
    "crates/serve/src/",
    "crates/store/src/",
    "crates/tensor/src/",
    // Examples and the top-level integration tests exercise the same
    // compute paths; a wall-clock or hash-order dependence there would
    // teach users the exact pattern the compute crates ban. (`#[test]`
    // bodies stay exempt via `applies_to_tests: false`.)
    "examples/",
    "tests/",
];

/// Hot-path crates where an unexpected panic kills a pipeline stage
/// mid-training (the executor reports it, but the run is lost). The
/// serving crate is held to the same bar: a panic there drops a client
/// connection at best and the ingest thread — the whole server — at
/// worst.
const PANIC_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/dist/src/",
    "crates/exec/src/",
    "crates/models/src/",
    "crates/nn/src/",
    "crates/serve/src/",
    "crates/store/src/",
];

/// Crates whose compute paths must not touch the filesystem directly:
/// all I/O belongs in the designated storage modules below, so that
/// out-of-core behavior, error typing, and corruption handling live in
/// one audited place (`cascade-store`) instead of leaking ad-hoc
/// `std::fs` calls into schedulers and models.
const IO_CONFINED_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/dist/src/",
    "crates/exec/src/",
    "crates/models/src/",
    "crates/nn/src/",
    // Scenario generation streams gigabytes through cascade-store; the
    // only ad-hoc fs access it is allowed is the report/recipe module
    // (and, via that module, the /proc/self/status read for peak RSS).
    "crates/scenario/src/",
    "crates/serve/src/",
    "crates/tensor/src/",
    "crates/tgraph/src/",
];

/// The designated I/O modules: parameter checkpointing, CSV ingest, and
/// the serving persistence layer (WAL + snapshot paths).
/// (`crates/store` is the storage layer itself and sits outside the
/// confinement scope entirely.)
const IO_MODULES: &[&str] = &[
    "crates/models/src/checkpoint.rs",
    "crates/scenario/src/report.rs",
    "crates/serve/src/persist.rs",
    "crates/tgraph/src/dataset.rs",
];

/// Telemetry modules: timing/space instrumentation whose whole job is
/// reading clocks; their outputs land in reports and `/stats` payloads,
/// never in schedules or ingested state.
const TELEMETRY: &[&str] = &[
    "crates/core/src/instrument.rs",
    "crates/dist/src/stats.rs",
    "crates/scenario/src/rss.rs",
    "crates/serve/src/stats.rs",
];

/// Modules allowed to call `arena::reset()`: the batch-loop drivers
/// (trainer, streaming driver, pipelined executor) and the arena
/// implementation itself.
const ARENA_RESET_SITES: &[&str] = &[
    "crates/core/src/trainer.rs",
    "crates/core/src/streaming.rs",
    "crates/dist/src/runtime.rs",
    "crates/exec/src/pipeline.rs",
    "crates/tensor/src/arena.rs",
];

/// Crates with real lock graphs: the tensor substrate (per-tensor
/// RwLocks), the pipelined executor, the serving stack, the storage
/// prefetcher, the sharded-memory dist runtime (per-shard RwLocks over
/// the shared memory plane), and the core drivers that compose them.
/// Their lock acquisition orders are checked globally.
const LOCK_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/dist/src/",
    "crates/exec/src/",
    "crates/serve/src/",
    "crates/store/src/",
    "crates/tensor/src/",
];

/// All rules, in reporting order.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        id: "det-hash-iter",
        scopes: DETERMINISM_SCOPE,
        allowed_paths: TELEMETRY,
        applies_to_tests: false,
        why: "HashMap/HashSet iteration order is randomized per process; any batch \
              schedule or float accumulation derived from it breaks the staleness-0 \
              bit-identity guarantee. Use Vec/BTreeMap, or suppress with proof the \
              container is never iterated.",
    },
    RuleSpec {
        id: "det-wallclock",
        scopes: DETERMINISM_SCOPE,
        allowed_paths: TELEMETRY,
        applies_to_tests: false,
        why: "Instant::now/SystemTime readings differ across runs; feeding them into \
              batching or learning decisions makes training irreproducible. Telemetry \
              that only fills reports must say so in a suppression.",
    },
    RuleSpec {
        id: "det-float-accum",
        scopes: DETERMINISM_SCOPE,
        allowed_paths: TELEMETRY,
        applies_to_tests: false,
        why: "Reducing floats in hash-container iteration order re-associates the sum \
              differently on every run; accumulate over an ordered container instead.",
    },
    RuleSpec {
        id: "panic-unwrap",
        scopes: PANIC_SCOPE,
        allowed_paths: &[],
        applies_to_tests: false,
        why: "A bare unwrap() in a hot path turns a recoverable condition into a dead \
              pipeline stage. Convert to a typed error, or use expect() with a message \
              stating the invariant that makes failure impossible.",
    },
    RuleSpec {
        id: "panic-expect",
        scopes: PANIC_SCOPE,
        allowed_paths: &[],
        applies_to_tests: false,
        why: "expect() is only better than unwrap() when the message states the \
              violated invariant; one-word messages explain nothing in a crash log.",
    },
    RuleSpec {
        id: "panic-macro",
        scopes: PANIC_SCOPE,
        allowed_paths: &[],
        applies_to_tests: false,
        why: "panic!/todo!/unreachable!/unimplemented! in hot paths abort a training \
              run; return an error or prove unreachability via types.",
    },
    RuleSpec {
        id: "panic-index",
        scopes: &["crates/exec/src/"],
        allowed_paths: &[],
        applies_to_tests: false,
        why: "Unchecked indexing in the executor kills a pipeline stage on the first \
              off-by-one; use get()/get_mut() and surface a PipelineError.",
    },
    RuleSpec {
        id: "conc-spawn",
        scopes: &["crates/dist/src/", "crates/exec/src/", "crates/serve/src/"],
        allowed_paths: &[
            "crates/dist/src/runtime.rs",
            "crates/exec/src/pipeline.rs",
            "crates/serve/src/server.rs",
        ],
        applies_to_tests: false,
        why: "Detached thread::spawn outside the designated concurrency modules \
              escapes the panic-safe shutdown protocols (scoped threads + channel \
              disconnection); executor threads belong in exec/pipeline.rs, serving \
              threads (accept loop, workers, ingest) in serve/server.rs, and dist \
              worker threads in dist/runtime.rs.",
    },
    RuleSpec {
        id: "conc-guard-across-blocking",
        scopes: LOCK_SCOPE,
        allowed_paths: &[],
        applies_to_tests: false,
        why: "Holding a lock guard across a blocking call (channel send/recv, thread \
              join, fsync, accept, condvar wait) couples the lock to external \
              progress — the classic pipeline deadlock. Drop the guard before \
              blocking. (Flow-aware successor to conc-guard-across-channel: tracks \
              real scopes, drop(), and shadowing.)",
    },
    RuleSpec {
        id: "conc-lock-order",
        scopes: LOCK_SCOPE,
        allowed_paths: &[],
        applies_to_tests: false,
        why: "Two code paths acquiring the same pair of named locks in opposite \
              orders (directly or through calls) deadlock the first time they \
              interleave; pick one global order per lock pair. Checked across the \
              whole workspace call graph.",
    },
    RuleSpec {
        id: "conc-static-mut",
        scopes: &[],
        allowed_paths: &[],
        applies_to_tests: true,
        why: "static mut is unsynchronized shared state (and unsafe to touch); use \
              atomics or pass state explicitly.",
    },
    RuleSpec {
        id: "arena-reset-confined",
        scopes: DETERMINISM_SCOPE,
        allowed_paths: ARENA_RESET_SITES,
        applies_to_tests: false,
        why: "arena::reset() trims the thread-local tensor buffer pool and is only \
              safe at a batch boundary, after the previous batch's graph has been \
              dropped; mid-batch calls silently degrade recycling. Call sites are \
              confined to the trainer/executor batch loops.",
    },
    RuleSpec {
        id: "arena-take-balance",
        scopes: &["crates/tensor/src/"],
        allowed_paths: &[],
        applies_to_tests: false,
        why: "A buffer from arena::take_* that is neither recycled, returned, nor \
              moved out on some path out of the function silently leaks from the \
              recycling pool — recycle rates degrade without any test failing. \
              Every take_* needs a recycle/move on every exit path.",
    },
    RuleSpec {
        id: "det-taint",
        scopes: DETERMINISM_SCOPE,
        allowed_paths: TELEMETRY,
        applies_to_tests: false,
        why: "A wall-clock or hash-iteration value flowing (possibly through \
              helpers) into a function that mutates training state — params, \
              memory, mailboxes — silently breaks bit-identical replay even when \
              the clock read itself sits in allowlisted telemetry code. Flagged at \
              the call site where the tainted value enters the mutation chain.",
    },
    RuleSpec {
        id: "io-fs-confined",
        scopes: IO_CONFINED_SCOPE,
        allowed_paths: IO_MODULES,
        applies_to_tests: false,
        why: "std::fs access outside the designated storage modules scatters \
              untyped I/O errors and corruption handling across compute crates; \
              route file access through cascade-store (event data), \
              models/checkpoint.rs (parameters), or tgraph/dataset.rs (CSV).",
    },
    RuleSpec {
        id: "policy-clippy-allow",
        scopes: &[],
        allowed_paths: &[],
        applies_to_tests: true,
        why: "#[allow(clippy::…)] without an adjacent comment explaining why hides \
              the tradeoff from the next reader; justify it or fix the lint.",
    },
    RuleSpec {
        id: "policy-bare-suppression",
        scopes: &[],
        allowed_paths: &[],
        applies_to_tests: true,
        why: "cascade-lint suppressions must name a known rule and carry a reason; a \
              bare allow() is indistinguishable from silencing a real bug.",
    },
    RuleSpec {
        id: "policy-registry-dep",
        scopes: &[],
        allowed_paths: &[],
        applies_to_tests: true,
        why: "The workspace builds fully offline (DESIGN.md zero-dependency policy); \
              every manifest dependency must be a path-internal cascade-* crate.",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleSpec> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `path` (workspace-relative, `/`-separated) is in `spec`'s
/// scope and not allowlisted.
pub fn in_scope(spec: &RuleSpec, path: &str) -> bool {
    if spec.allowed_paths.iter().any(|p| path.starts_with(p)) {
        return false;
    }
    spec.scopes.is_empty() || spec.scopes.iter().any(|p| path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(rule(r.id).is_some());
            assert!(
                !RULES[..i].iter().any(|o| o.id == r.id),
                "duplicate rule id {}",
                r.id
            );
        }
    }

    #[test]
    fn scope_honors_allowlists() {
        let wall = rule("det-wallclock").expect("det-wallclock is registered");
        assert!(in_scope(wall, "crates/core/src/trainer.rs"));
        assert!(!in_scope(wall, "crates/core/src/instrument.rs"));
        assert!(!in_scope(wall, "crates/bench/src/experiments/session.rs"));
        assert!(!in_scope(wall, "crates/util/src/bench.rs"));

        let spawn = rule("conc-spawn").expect("conc-spawn is registered");
        assert!(in_scope(spawn, "crates/exec/src/workers.rs"));
        assert!(!in_scope(spawn, "crates/exec/src/pipeline.rs"));
        assert!(!in_scope(spawn, "crates/core/src/scheduler.rs"));
    }

    #[test]
    fn serve_crate_is_bound_with_its_designated_escapes() {
        // The engine is determinism/panic/io bound like any compute path.
        let wall = rule("det-wallclock").expect("det-wallclock is registered");
        assert!(in_scope(wall, "crates/serve/src/engine.rs"));
        // … but the telemetry module may read clocks for latency stats.
        assert!(!in_scope(wall, "crates/serve/src/stats.rs"));

        let fs = rule("io-fs-confined").expect("io-fs-confined is registered");
        assert!(in_scope(fs, "crates/serve/src/engine.rs"));
        assert!(!in_scope(fs, "crates/serve/src/persist.rs"));

        // Threads are confined to the server module, mirroring
        // exec/pipeline.rs.
        let spawn = rule("conc-spawn").expect("conc-spawn is registered");
        assert!(in_scope(spawn, "crates/serve/src/engine.rs"));
        assert!(!in_scope(spawn, "crates/serve/src/server.rs"));

        let unwrap = rule("panic-unwrap").expect("panic-unwrap is registered");
        assert!(in_scope(unwrap, "crates/serve/src/http.rs"));
        assert!(in_scope(unwrap, "crates/serve/src/bin/cascade_serve.rs"));
    }

    #[test]
    fn dist_crate_is_bound_with_its_designated_escapes() {
        // Determinism + taint rules bind the whole dist runtime; only the
        // telemetry module may read clocks.
        let wall = rule("det-wallclock").expect("det-wallclock is registered");
        assert!(in_scope(wall, "crates/dist/src/runtime.rs"));
        assert!(in_scope(wall, "crates/dist/src/grad.rs"));
        assert!(!in_scope(wall, "crates/dist/src/stats.rs"));

        let taint = rule("det-taint").expect("det-taint is registered");
        assert!(in_scope(taint, "crates/dist/src/plane.rs"));
        assert!(!in_scope(taint, "crates/dist/src/stats.rs"));

        // Shard locks participate in the global lock-order analysis.
        let order = rule("conc-lock-order").expect("conc-lock-order is registered");
        assert!(in_scope(order, "crates/dist/src/plane.rs"));
        let guard = rule("conc-guard-across-blocking").expect("rule is registered");
        assert!(in_scope(guard, "crates/dist/src/runtime.rs"));

        // Worker threads are confined to the runtime module.
        let spawn = rule("conc-spawn").expect("conc-spawn is registered");
        assert!(in_scope(spawn, "crates/dist/src/tcp.rs"));
        assert!(!in_scope(spawn, "crates/dist/src/runtime.rs"));

        // Arena resets happen only in the worker batch loop.
        let arena = rule("arena-reset-confined").expect("rule is registered");
        assert!(in_scope(arena, "crates/dist/src/grad.rs"));
        assert!(!in_scope(arena, "crates/dist/src/runtime.rs"));

        // No ad-hoc fs access: checkpoints go through models/checkpoint.rs.
        let fs = rule("io-fs-confined").expect("io-fs-confined is registered");
        assert!(in_scope(fs, "crates/dist/src/round.rs"));

        let unwrap = rule("panic-unwrap").expect("panic-unwrap is registered");
        assert!(in_scope(unwrap, "crates/dist/src/tcp.rs"));
    }

    #[test]
    fn scenario_crate_is_bound_with_its_designated_escapes() {
        // The generator and runner are determinism-bound: a recipe must
        // regenerate bit-identically on leader and follower hosts.
        let wall = rule("det-wallclock").expect("det-wallclock is registered");
        assert!(in_scope(wall, "crates/scenario/src/gen.rs"));
        assert!(in_scope(wall, "crates/scenario/src/runner.rs"));
        // … but the RSS/stopwatch sampler may read clocks: its outputs
        // land in scenario reports, never in the generated stream.
        assert!(!in_scope(wall, "crates/scenario/src/rss.rs"));

        let hash = rule("det-hash-iter").expect("det-hash-iter is registered");
        assert!(in_scope(hash, "crates/scenario/src/gen.rs"));

        let taint = rule("det-taint").expect("det-taint is registered");
        assert!(in_scope(taint, "crates/scenario/src/runner.rs"));
        assert!(!in_scope(taint, "crates/scenario/src/rss.rs"));

        // All fs access — recipe loading, report writing, the
        // /proc/self/status read — is confined to the report module.
        let fs = rule("io-fs-confined").expect("io-fs-confined is registered");
        assert!(in_scope(fs, "crates/scenario/src/gen.rs"));
        assert!(in_scope(fs, "crates/scenario/src/bin/cascade_scenario.rs"));
        assert!(!in_scope(fs, "crates/scenario/src/report.rs"));
    }

    #[test]
    fn global_rules_bind_everywhere() {
        let smut = rule("conc-static-mut").expect("conc-static-mut is registered");
        assert!(in_scope(smut, "crates/util/src/rng.rs"));
        assert!(in_scope(smut, "src/lib.rs"));
    }
}
