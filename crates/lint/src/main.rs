//! The `cascade-lint` binary: scans the workspace, diffs against the
//! checked-in baseline, and exits non-zero on new findings.
//!
//! ```text
//! cargo run -p cascade-lint -- [--root DIR] [--format text|json]
//!                              [--baseline FILE] [--write-baseline]
//!                              [--list-rules] [--list-files]
//! ```
//!
//! Exit codes: `0` clean, `1` new findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cascade_lint::{scan_workspace, workspace_files, Baseline, RunSummary, RULES};

struct Options {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    list_rules: bool,
    list_files: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: cascade-lint [--root DIR] [--format text|json] [--baseline FILE] \
     [--write-baseline] [--list-rules] [--list-files]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format: Format::Text,
        baseline: None,
        write_baseline: false,
        list_rules: false,
        list_files: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format must be `text` or `json`, got {:?}",
                            other.unwrap_or("nothing")
                        ))
                    }
                }
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file argument")?,
                ))
            }
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--list-files" => opts.list_files = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{}`\n{}", other, usage())),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for r in RULES {
            println!("{}", r.id);
            println!(
                "    scope: {}",
                if r.scopes.is_empty() {
                    "whole workspace".to_string()
                } else {
                    r.scopes.join(", ")
                }
            );
            println!(
                "    {}",
                r.why.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return Ok(true);
    }

    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("current_dir: {}", e))?;
            cascade_lint::find_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    if opts.list_files {
        for f in workspace_files(&root)? {
            println!("{}", f.rel_path);
        }
        return Ok(true);
    }

    let (findings, suppressed, files_scanned) = scan_workspace(&root)?;

    let baseline_path = opts.baseline.as_ref().map(|p| {
        if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        }
    });

    if opts.write_baseline {
        let path = baseline_path.ok_or("--write-baseline needs --baseline FILE")?;
        let rendered = Baseline::from_findings(&findings).render();
        std::fs::write(&path, rendered).map_err(|e| format!("write {}: {}", path.display(), e))?;
        eprintln!(
            "cascade-lint: wrote baseline covering {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return Ok(true);
    }

    let baseline = match &baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read baseline {}: {}", path.display(), e))?;
            Baseline::parse(&text).map_err(|e| format!("{}: {}", path.display(), e))?
        }
        None => Baseline::default(),
    };

    let summary = RunSummary::new(baseline.diff(&findings), suppressed, files_scanned);
    match opts.format {
        Format::Text => print!("{}", summary.render_text()),
        Format::Json => println!("{}", summary.render_json()),
    }
    Ok(summary.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("cascade-lint: {}", msg);
            ExitCode::from(2)
        }
    }
}
