//! The multi-process TCP transport: the same round protocol as the
//! in-process runtime, spoken over `std::net` loopback/LAN sockets.
//!
//! One process is the **leader** (worker 0); the rest are **followers**
//! (workers `1..N`). Every process holds the full dataset (rebuilt from
//! the same seed or loaded identically), a full parameter replica, and
//! its own *local* sharded plane covering all nodes — processes share
//! no memory, so unlike the in-process runtime nobody can rely on peers
//! to maintain remote shards. Instead each process applies **every**
//! payload's write-backs and messages (`shard = None`) in worker-index
//! payload order, split-phase (all write-backs, then all messages).
//! That per-node write/push sequence is identical to the in-process
//! schedule where each of N workers applies its own shard's filtered
//! slice of the same payloads — so TCP training is bit-identical to
//! in-process training for the same `(workers, seed, stream)`, which
//! the `tcp_loopback` integration test asserts.
//!
//! Per round: each worker computes its payload from its chunk
//! partition; followers send `Payload` frames; the leader assembles the
//! worker-index-ordered bundle and broadcasts it as a `Round` frame
//! (or `EpochEnd`/`Done` when all partitions are exhausted); everyone
//! then performs the identical reduce → step → apply sequence. The
//! message order *is* the barrier — no clocks, no retries.
//!
//! Framing is a `u32` little-endian length prefix followed by the
//! [`Frame`] body. Malformed input surfaces as a typed [`DistError`],
//! never a panic.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_nn::{Adam, Module};
use cascade_tgraph::{Dataset, EdgeFeatures, InMemorySource, PartitionedSource};

use crate::round::{Frame, RoundPayload, WireError};
use crate::runtime::{
    apply_round, compute_payload, end_of_round, BatchCutter, BatchRecord, DistConfig, DistOutcome,
};
use crate::stats::DistReport;

/// Largest accepted frame body (matches the codec's decode bound).
const MAX_FRAME_LEN: usize = 1 << 28;

/// A TCP-transport failure.
#[derive(Debug)]
pub enum DistError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A peer sent bytes the codec rejects.
    Wire(WireError),
    /// A peer violated the round protocol (wrong frame, wrong worker
    /// index, inconsistent configuration).
    Protocol(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist transport I/O error: {}", e),
            DistError::Wire(e) => write!(f, "dist transport decode error: {}", e),
            DistError::Protocol(m) => write!(f, "dist protocol violation: {}", m),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Wire(e) => Some(e),
            DistError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

fn protocol(message: impl Into<String>) -> DistError {
    DistError::Protocol(message.into())
}

/// Writes one length-prefixed frame.
fn send_frame(stream: &mut TcpStream, frame: &Frame) -> Result<(), DistError> {
    let body = frame.encode();
    let len = u32::try_from(body.len())
        .map_err(|_| protocol(format!("frame body of {} bytes exceeds u32", body.len())))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&body)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
fn recv_frame(stream: &mut TcpStream) -> Result<Frame, DistError> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(protocol(format!("frame length {} exceeds the bound", len)));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Frame::decode(&body)?)
}

/// Per-process training state shared by the leader and follower loops.
struct Replica<'a> {
    cutter: BatchCutter<InMemorySource>,
    model: MemoryTgnn,
    params: Vec<cascade_tensor::Tensor>,
    opt: Adam,
    feats: &'a EdgeFeatures,
    feat_dim: usize,
    worker: usize,
    batches: Vec<BatchRecord>,
    epoch_losses: Vec<f32>,
    rounds: usize,
    events: usize,
    epoch_loss_sum: f64,
    epoch_events: usize,
}

impl<'a> Replica<'a> {
    fn new(worker: usize, data: &'a Dataset, model_cfg: &ModelConfig, cfg: &DistConfig) -> Self {
        let feat_dim = data.features().dim();
        let source = PartitionedSource::new(
            InMemorySource::from_dataset(data, cfg.chunk_size),
            worker,
            cfg.workers,
        );
        let model = MemoryTgnn::new_sharded(
            model_cfg.clone(),
            data.num_nodes(),
            feat_dim,
            cfg.seed,
            cfg.workers,
        );
        let params = model.parameters();
        let opt = Adam::new(model.parameters(), cfg.lr);
        Replica {
            cutter: BatchCutter::new(source, cfg.batch_size, feat_dim),
            model,
            params,
            opt,
            feats: data.features(),
            feat_dim,
            worker,
            batches: Vec::new(),
            epoch_losses: Vec::new(),
            rounds: 0,
            events: 0,
            epoch_loss_sum: 0.0,
            epoch_events: 0,
        }
    }

    fn next_payload(&mut self) -> Option<RoundPayload> {
        let batch = self.cutter.next_batch()?;
        Some(compute_payload(
            &self.model,
            &self.params,
            self.worker,
            batch,
            self.feat_dim,
            self.feats,
        ))
    }

    /// The reduce → step → split-phase apply sequence, `shard = None`:
    /// this process owns every node locally.
    fn apply(&mut self, round: &[Option<RoundPayload>], cfg: &DistConfig) {
        for p in round.iter().flatten() {
            self.batches.push(BatchRecord {
                round: self.rounds,
                worker: p.worker,
                first_id: p.first_id,
                events: p.events.len(),
                loss: p.loss,
            });
            self.events += p.events.len();
            self.epoch_loss_sum += p.loss as f64 * p.events.len() as f64;
            self.epoch_events += p.events.len();
        }
        apply_round(
            &mut self.model,
            &self.params,
            &mut self.opt,
            cfg.clip_norm,
            round,
            self.feats,
            None,
            None,
        );
        end_of_round();
        self.rounds += 1;
    }

    /// Epoch boundary: flush telemetry and — unless the run is over —
    /// reset model state and rewind the partition. The final boundary
    /// keeps the last epoch's memories: they are the exported state
    /// (serial trainers reset at epoch *start*, never after the run).
    fn end_epoch(&mut self, done: bool) {
        self.epoch_losses
            .push((self.epoch_loss_sum / self.epoch_events.max(1) as f64) as f32);
        self.epoch_loss_sum = 0.0;
        self.epoch_events = 0;
        if !done {
            self.model.reset_state();
            self.cutter.rewind();
        }
    }

    fn outcome(self, cfg: &DistConfig) -> DistOutcome {
        DistOutcome {
            report: DistReport {
                workers: cfg.workers,
                epochs: cfg.epochs,
                rounds: self.rounds,
                events: self.events,
                epoch_losses: self.epoch_losses,
            },
            state: self.model.export_state(),
            optimizer: self.opt.export_state(),
            batches: self.batches,
        }
    }
}

/// Runs the leader (worker 0): binds `addr`, waits for `workers - 1`
/// follower connections, then drives the round protocol to completion.
///
/// # Errors
///
/// [`DistError`] on socket failure, malformed frames, or protocol
/// violations (duplicate/out-of-range worker indices, mismatched
/// worker counts).
pub fn run_leader(
    addr: &str,
    data: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &DistConfig,
) -> Result<DistOutcome, DistError> {
    run_leader_on(TcpListener::bind(addr)?, data, model_cfg, cfg)
}

/// [`run_leader`] over an already-bound listener (lets tests bind port
/// 0 and hand the resolved address to followers).
pub fn run_leader_on(
    listener: TcpListener,
    data: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &DistConfig,
) -> Result<DistOutcome, DistError> {
    cfg.validate();

    // Accept and identify every follower before training starts.
    let mut slots: Vec<Option<TcpStream>> = (1..cfg.workers).map(|_| None).collect();
    for _ in 1..cfg.workers {
        let (mut stream, _) = listener.accept()?;
        match recv_frame(&mut stream)? {
            Frame::Hello { worker, workers } => {
                if workers as usize != cfg.workers {
                    return Err(protocol(format!(
                        "follower expects {} workers, leader runs {}",
                        workers, cfg.workers
                    )));
                }
                let w = worker as usize;
                if w == 0 || w >= cfg.workers {
                    return Err(protocol(format!("worker index {} out of range", w)));
                }
                if slots[w - 1].replace(stream).is_some() {
                    return Err(protocol(format!("worker index {} connected twice", w)));
                }
            }
            other => {
                return Err(protocol(format!(
                    "expected Hello, got {} frame",
                    frame_name(&other)
                )))
            }
        }
    }
    let mut peers: Vec<TcpStream> = Vec::with_capacity(cfg.workers - 1);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(stream) => peers.push(stream),
            None => return Err(protocol(format!("worker {} never connected", i + 1))),
        }
    }

    let mut rep = Replica::new(0, data, model_cfg, cfg);
    let mut epoch = 0usize;
    loop {
        let own = rep.next_payload();
        let mut round: Vec<Option<RoundPayload>> = Vec::with_capacity(cfg.workers);
        round.push(own);
        for (i, peer) in peers.iter_mut().enumerate() {
            match recv_frame(peer)? {
                Frame::Payload(p) => {
                    if let Some(p) = &p {
                        if p.worker != i + 1 {
                            return Err(protocol(format!(
                                "worker {} sent a payload claiming worker {}",
                                i + 1,
                                p.worker
                            )));
                        }
                    }
                    round.push(p);
                }
                other => {
                    return Err(protocol(format!(
                        "expected Payload, got {} frame",
                        frame_name(&other)
                    )))
                }
            }
        }

        if round.iter().all(Option::is_none) {
            epoch += 1;
            let done = epoch == cfg.epochs;
            let boundary = if done { Frame::Done } else { Frame::EpochEnd };
            for peer in peers.iter_mut() {
                send_frame(peer, &boundary)?;
            }
            rep.end_epoch(done);
            if done {
                break;
            }
            continue;
        }

        let frame = Frame::Round(round.clone());
        for peer in peers.iter_mut() {
            send_frame(peer, &frame)?;
        }
        rep.apply(&round, cfg);
    }
    Ok(rep.outcome(cfg))
}

/// Runs follower `worker` (in `1..workers`): connects to the leader at
/// `addr` and follows the round protocol until `Done`.
///
/// Returns this process's outcome — bit-identical in state, batches,
/// and losses to the leader's (only `elapsed` differs).
///
/// # Errors
///
/// [`DistError`] on socket failure, malformed frames, a worker index
/// outside `1..workers`, or protocol violations.
pub fn run_follower(
    addr: &str,
    worker: usize,
    data: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &DistConfig,
) -> Result<DistOutcome, DistError> {
    cfg.validate();
    if worker == 0 || worker >= cfg.workers {
        return Err(protocol(format!(
            "follower index must be in 1..{}, got {}",
            cfg.workers, worker
        )));
    }
    let mut stream = TcpStream::connect(addr)?;
    send_frame(
        &mut stream,
        &Frame::Hello {
            worker: worker as u32,
            workers: cfg.workers as u32,
        },
    )?;

    let mut rep = Replica::new(worker, data, model_cfg, cfg);
    loop {
        let own = rep.next_payload();
        send_frame(&mut stream, &Frame::Payload(own))?;
        match recv_frame(&mut stream)? {
            Frame::Round(round) => {
                if round.len() != cfg.workers {
                    return Err(protocol(format!(
                        "round bundle holds {} slots for {} workers",
                        round.len(),
                        cfg.workers
                    )));
                }
                rep.apply(&round, cfg);
            }
            Frame::EpochEnd => rep.end_epoch(false),
            Frame::Done => {
                rep.end_epoch(true);
                break;
            }
            other => {
                return Err(protocol(format!(
                    "expected Round/EpochEnd/Done, got {} frame",
                    frame_name(&other)
                )))
            }
        }
    }
    Ok(rep.outcome(cfg))
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello { .. } => "Hello",
        Frame::Payload(_) => "Payload",
        Frame::Round(_) => "Round",
        Frame::EpochEnd => "EpochEnd",
        Frame::Done => "Done",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follower_index_zero_is_rejected() {
        let data = cascade_tgraph::SynthConfig::wiki()
            .with_scale(0.002)
            .generate(3);
        let cfg = DistConfig::new().with_workers(2);
        let err = run_follower("127.0.0.1:1", 0, &data, &ModelConfig::tgn(), &cfg)
            .expect_err("worker 0 is the leader");
        assert!(matches!(err, DistError::Protocol(_)));
    }

    #[test]
    fn errors_render_their_cause() {
        let wire = DistError::from(WireError {
            field: "loss",
            message: "needs 4 bytes, 0 remain".into(),
        });
        assert!(wire.to_string().contains("loss"));
        let io = DistError::from(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer hung up",
        ));
        assert!(io.to_string().contains("peer hung up"));
    }
}
