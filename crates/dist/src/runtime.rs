//! The in-process dist runtime: N worker threads training one model
//! over a shared, sharded memory plane.
//!
//! # Round protocol
//!
//! Training proceeds in synchronous rounds. Worker `w` owns memory
//! shard `w` and streams only the chunks `PartitionedSource` routes to
//! it (`chunk.index % N == w`). Each round:
//!
//! 1. **Compute** — every worker with remaining events runs the forward
//!    and backward pass on its next batch against its own full
//!    parameter replica, then publishes a [`RoundPayload`] (batch,
//!    write-back ticket, gradients) into its slot. *Barrier.*
//! 2. **Reduce** — every worker reads all payloads and performs the
//!    same worker-index-ordered [`all_reduce`], installs the reduced
//!    gradients, clips, and steps its own optimizer. Replicas were
//!    seeded identically and receive identical updates, so parameters
//!    stay bit-identical across workers without ever being exchanged.
//! 3. **Phase A (write-backs)** — every worker applies *all* payloads'
//!    memory write-backs and mailbox clears, filtered to the nodes its
//!    shard owns, in worker-index payload order. Each write lands
//!    exactly once, on its owner. *Barrier.*
//! 4. **Phase B (messages)** — every worker applies all payloads'
//!    message generation and adjacency registration, again filtered by
//!    ownership. Message content reads both endpoints' memories, which
//!    is why phase A must complete globally first. *Barrier.*
//! 5. Each worker trims its thread-local tensor arena.
//!
//! With `N == 1` the protocol degenerates to exactly the serial loop
//! (forward → backward → clip → step → apply → arena trim) and is
//! bit-identical to it — enforced by the `n1_bit_identity` integration
//! test. With `N > 1` the schedule is still fully deterministic for a
//! given `(workers, seed, stream)` but *diverges* from serial training
//! by a bounded, documented amount: the batches of one round are
//! computed against memory that excludes the other same-round batches'
//! updates — DistTGL-style staleness, bounded by one round — and their
//! gradients are averaged rather than applied sequentially. See
//! DESIGN.md §12.

use std::sync::{Barrier, RwLock};

use cascade_models::{MemoryTgnn, ModelConfig, PlaneGeometry};
use cascade_nn::{clip_grad_norm, Adam, Module};
use cascade_tgraph::{
    Dataset, EdgeFeatures, Event, EventChunk, EventSource, InMemorySource, PartitionedSource,
};

use crate::grad::{all_reduce, collect_grads, install_grads, GradSet};
use crate::plane::SharedPlane;
use crate::round::RoundPayload;
use crate::stats::DistReport;

/// Configuration of a dist training run.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Worker thread (= memory shard) count.
    pub workers: usize,
    /// Events per streamed chunk; must be a multiple of `batch_size` so
    /// batches never straddle chunk (= ownership) boundaries.
    pub chunk_size: usize,
    /// Events per training batch.
    pub batch_size: usize,
    /// Epochs to train.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-clipping threshold (`None` disables).
    pub clip_norm: Option<f32>,
    /// Seed for parameter init and samplers (all workers share it).
    pub seed: u64,
}

impl DistConfig {
    /// A small default: 1 worker, chunks of 256, batches of 128, one
    /// epoch, `lr = 1e-3`, clip at 5.0, seed 7.
    pub fn new() -> Self {
        DistConfig {
            workers: 1,
            chunk_size: 256,
            batch_size: 128,
            epochs: 1,
            lr: 1e-3,
            clip_norm: Some(5.0),
            seed: 7,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets chunk and batch size together.
    pub fn with_batching(mut self, chunk_size: usize, batch_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self.batch_size = batch_size;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.workers > 0, "dist training needs at least one worker");
        assert!(self.epochs > 0, "dist training needs at least one epoch");
        assert!(
            self.batch_size > 0 && self.chunk_size.is_multiple_of(self.batch_size),
            "chunk size {} must be a positive multiple of batch size {} so \
             batches never straddle chunk ownership boundaries",
            self.chunk_size,
            self.batch_size
        );
    }
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig::new()
    }
}

/// One batch's record in the run log (telemetry and identity tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchRecord {
    /// Synchronous round index (across epochs).
    pub round: usize,
    /// Worker that computed the batch.
    pub worker: usize,
    /// Global stream id of the batch's first event.
    pub first_id: usize,
    /// Events in the batch.
    pub events: usize,
    /// Batch loss.
    pub loss: f32,
}

/// Everything a dist run produces.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// Run telemetry.
    pub report: DistReport,
    /// Final model state (`MemoryTgnn::export_state` of worker 0 —
    /// parameters are replica-identical and the plane is shared, so
    /// this is *the* model).
    pub state: Vec<u8>,
    /// Final optimizer state (worker 0's, replica-identical).
    pub optimizer: Vec<u8>,
    /// Per-batch log in (round, worker-index) order.
    pub batches: Vec<BatchRecord>,
}

/// Cuts a worker's streamed chunks into batches.
///
/// `chunk_size % batch_size == 0` guarantees a batch never spans two
/// chunks, so `first_id = chunk.base + offset` stays globally correct
/// and every event's features travel with its own payload.
pub(crate) struct BatchCutter<S> {
    source: PartitionedSource<S>,
    current: Option<EventChunk>,
    offset: usize,
    batch_size: usize,
    feat_dim: usize,
}

/// One cut batch: `(first_id, events, feature rows)`.
pub(crate) type CutBatch = (usize, Vec<Event>, Vec<f32>);

impl<S: EventSource> BatchCutter<S> {
    pub(crate) fn new(source: PartitionedSource<S>, batch_size: usize, feat_dim: usize) -> Self {
        BatchCutter {
            source,
            current: None,
            offset: 0,
            batch_size,
            feat_dim,
        }
    }

    pub(crate) fn next_batch(&mut self) -> Option<CutBatch> {
        loop {
            if let Some(chunk) = &self.current {
                if self.offset < chunk.events.len() {
                    let start = self.offset;
                    let end = (start + self.batch_size).min(chunk.events.len());
                    self.offset = end;
                    let events = chunk.events[start..end].to_vec();
                    let rows = chunk.features[start * self.feat_dim..end * self.feat_dim].to_vec();
                    return Some((chunk.base + start, events, rows));
                }
                self.current = None;
            }
            match self
                .source
                .next_chunk()
                .expect("in-memory sources never fail")
            {
                Some(chunk) => {
                    self.offset = 0;
                    self.current = Some(chunk);
                }
                None => return None,
            }
        }
    }

    pub(crate) fn rewind(&mut self) {
        self.current = None;
        self.offset = 0;
        self.source.reset().expect("in-memory sources never fail");
    }
}

/// Shared round state: one payload slot per worker, fenced by the
/// barrier. Slots are written by their owner before the compute barrier
/// and read by everyone after it; the phase-A barrier keeps any worker
/// from overwriting a slot before all peers have copied the round.
struct RoundBoard {
    slots: Vec<RwLock<Option<RoundPayload>>>,
    barrier: Barrier,
}

impl RoundBoard {
    fn new(workers: usize) -> Self {
        RoundBoard {
            slots: (0..workers).map(|_| RwLock::new(None)).collect(),
            barrier: Barrier::new(workers),
        }
    }

    fn publish(&self, worker: usize, payload: Option<RoundPayload>) {
        let mut slot = self.slots[worker]
            .write()
            .expect("round slots are never poisoned");
        *slot = payload;
    }

    fn snapshot(&self) -> Vec<Option<RoundPayload>> {
        self.slots
            .iter()
            .map(|s| s.read().expect("round slots are never poisoned").clone())
            .collect()
    }
}

/// Applies one round to the worker's replica: reduce + step, then the
/// two barrier-fenced apply phases. `shard = None` applies every write
/// (the TCP path, where each process owns a full local plane);
/// `Some(w)` applies only shard `w`'s writes (the in-process path,
/// where the plane is shared). Shared between both transports so their
/// apply schedules cannot drift apart.
// one call per transport; a struct would just rename the args
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_round(
    model: &mut MemoryTgnn,
    params: &[cascade_tensor::Tensor],
    opt: &mut Adam,
    clip_norm: Option<f32>,
    round: &[Option<RoundPayload>],
    feats: &EdgeFeatures,
    shard: Option<usize>,
    fence: Option<&Barrier>,
) {
    let contributions: Vec<&GradSet> = round.iter().flatten().map(|p| &p.grads).collect();
    if contributions.is_empty() {
        return;
    }
    let reduced = all_reduce(&contributions);
    install_grads(params, &reduced);
    if let Some(c) = clip_norm {
        clip_grad_norm(params, c);
    }
    opt.step();

    // Phase A: all payloads' write-backs, in worker-index payload
    // order, filtered to owned nodes.
    for p in round.iter().flatten() {
        model.apply_writeback(&p.pending(), shard);
    }
    if let Some(b) = fence {
        b.wait();
    }
    // Phase B: message generation + adjacency, same order and filter.
    // Every memory row phase B reads was finalized in phase A.
    for p in round.iter().flatten() {
        model.apply_messages(&p.events, p.first_id, feats, shard);
    }
    if let Some(b) = fence {
        b.wait();
    }
}

/// Round-boundary housekeeping: trims the calling thread's tensor
/// arena after the round's graph has been dropped. The TCP transport
/// calls this too — the reset *site* stays in the runtime module
/// (`arena-reset-confined`).
pub(crate) fn end_of_round() {
    cascade_tensor::arena::reset();
}

/// Computes one worker's payload for the next round: forward, backward,
/// gradient collection. Shared between the in-process workers and the
/// TCP processes.
///
/// `feats` is the dataset's **full** feature table: neighbor embedding
/// reads edge features of arbitrary *earlier* events (whichever the
/// plane's adjacency samples), so a batch-local table is not enough.
/// Every dist participant holds the complete dataset, which is why the
/// table needs no exchange; the payload still carries its own rows so
/// rounds stay self-describing on the wire.
pub(crate) fn compute_payload(
    model: &MemoryTgnn,
    params: &[cascade_tensor::Tensor],
    worker: usize,
    batch: CutBatch,
    feat_dim: usize,
    feats: &EdgeFeatures,
) -> RoundPayload {
    let (first_id, events, feat_rows) = batch;
    let fwd = model.forward_batch(&events, first_id, feats);
    let loss = fwd.loss.item();
    fwd.loss.backward();
    let grads = collect_grads(params);
    let pending = fwd.pending;
    RoundPayload {
        worker,
        first_id,
        events,
        feat_dim,
        feat_rows,
        centers: pending.centers().to_vec(),
        has_msg: pending.has_msg().to_vec(),
        post: pending.post().to_vec(),
        grads,
        loss,
    }
}

/// What each worker thread hands back when the run completes.
struct WorkerOut {
    batches: Vec<BatchRecord>,
    epoch_losses: Vec<f32>,
    rounds: usize,
    events: usize,
    /// Worker 0 only: exported model and optimizer state.
    state: Option<(Vec<u8>, Vec<u8>)>,
}

/// Trains `model_cfg` on `data` with `cfg.workers` threads over a
/// shared sharded memory plane, and returns the run's outcome.
///
/// The run covers the dataset's full event stream each epoch (the dist
/// trainer has no train/validation split of its own; evaluation goes
/// through the serial stack against the exported state).
///
/// # Panics
///
/// Panics on an invalid configuration (zero workers/epochs, chunk size
/// not a multiple of batch size) or if a worker thread panics.
pub fn train_dist(data: &Dataset, model_cfg: &ModelConfig, cfg: &DistConfig) -> DistOutcome {
    cfg.validate();
    let feat_dim = data.features().dim();
    let geom = PlaneGeometry::for_config(model_cfg, data.num_nodes(), feat_dim, cfg.seed);
    let plane = SharedPlane::new(&geom, cfg.workers);
    let board = RoundBoard::new(cfg.workers);

    let mut outs: Vec<Option<WorkerOut>> = Vec::new();
    for _ in 0..cfg.workers {
        outs.push(None);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..cfg.workers {
            let plane = plane.clone();
            let board = &board;
            let model_cfg = model_cfg.clone();
            let cfg = cfg.clone();
            handles.push(
                scope.spawn(move || worker_loop(w, data, model_cfg, cfg, plane, board, feat_dim)),
            );
        }
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => outs[w] = Some(out),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });

    let mut zero = outs[0].take().expect("worker 0 always reports");
    let (state, optimizer) = zero
        .state
        .take()
        .expect("worker 0 always exports final state");
    let events: usize = std::iter::once(&zero)
        .chain(outs.iter().flatten())
        .map(|o| o.events)
        .sum();
    // Every worker sees every payload, so worker 0's log already covers
    // the whole run in (round, worker) order.
    let batches = zero.batches.clone();
    DistOutcome {
        report: DistReport {
            workers: cfg.workers,
            epochs: cfg.epochs,
            rounds: zero.rounds,
            events,
            epoch_losses: zero.epoch_losses,
        },
        state,
        optimizer,
        batches,
    }
}

// the thread entry point takes the full per-worker wiring; boxing it
// into a struct would just rename the args
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    data: &Dataset,
    model_cfg: ModelConfig,
    cfg: DistConfig,
    plane: SharedPlane,
    board: &RoundBoard,
    feat_dim: usize,
) -> WorkerOut {
    let source = PartitionedSource::new(
        InMemorySource::from_dataset(data, cfg.chunk_size),
        w,
        cfg.workers,
    );
    let mut cutter = BatchCutter::new(source, cfg.batch_size, feat_dim);
    let feats = data.features();
    let mut model = MemoryTgnn::with_plane(model_cfg, feat_dim, cfg.seed, Box::new(plane));
    let params = model.parameters();
    let mut opt = Adam::new(model.parameters(), cfg.lr);

    let mut batches = Vec::new();
    let mut epoch_losses = Vec::new();
    let mut rounds = 0usize;
    let mut own_events = 0usize;
    let mut epoch = 0usize;
    let mut epoch_loss_sum = 0.0f64;
    let mut epoch_events = 0usize;

    loop {
        let payload = cutter.next_batch().map(|batch| {
            own_events += batch.1.len();
            compute_payload(&model, &params, w, batch, feat_dim, feats)
        });
        board.publish(w, payload);
        board.barrier.wait();
        let round = board.snapshot();

        if round.iter().all(Option::is_none) {
            // Epoch boundary: everyone has passed the compute barrier,
            // so the plane is quiescent. Worker 0 resets it alone,
            // fenced on both sides. The serial trainers reset at the
            // *start* of each epoch, so the run's final boundary must
            // NOT reset — the last epoch's memories are the exported
            // state.
            epoch += 1;
            let done = epoch == cfg.epochs;
            board.barrier.wait();
            if w == 0 {
                epoch_losses.push((epoch_loss_sum / epoch_events.max(1) as f64) as f32);
                if !done {
                    model.reset_state();
                }
            }
            board.barrier.wait();
            if done {
                break;
            }
            epoch_loss_sum = 0.0;
            epoch_events = 0;
            cutter.rewind();
            continue;
        }

        for p in round.iter().flatten() {
            batches.push(BatchRecord {
                round: rounds,
                worker: p.worker,
                first_id: p.first_id,
                events: p.events.len(),
                loss: p.loss,
            });
            epoch_loss_sum += p.loss as f64 * p.events.len() as f64;
            epoch_events += p.events.len();
        }
        apply_round(
            &mut model,
            &params,
            &mut opt,
            cfg.clip_norm,
            &round,
            feats,
            Some(w),
            Some(&board.barrier),
        );
        end_of_round();
        rounds += 1;
    }

    // Final epoch never hits the reset path's loss flush for workers
    // other than 0 — but only worker 0's telemetry is reported, and it
    // flushed inside the boundary block above.
    WorkerOut {
        batches,
        epoch_losses,
        rounds,
        events: own_events,
        state: if w == 0 {
            Some((model.export_state(), opt.export_state()))
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::SynthConfig;

    fn data() -> Dataset {
        SynthConfig::wiki().with_scale(0.004).generate(11)
    }

    #[test]
    fn single_worker_runs_and_reports() {
        let d = data();
        let cfg = DistConfig::new().with_batching(128, 64).with_epochs(2);
        let out = train_dist(&d, &ModelConfig::tgn().with_dims(8, 4), &cfg);
        assert_eq!(out.report.workers, 1);
        assert_eq!(out.report.epochs, 2);
        assert_eq!(out.report.events, 2 * d.num_events());
        assert_eq!(out.report.epoch_losses.len(), 2);
        assert!(out.report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(!out.state.is_empty());
        assert!(!out.batches.is_empty());
    }

    #[test]
    fn two_workers_cover_every_event_exactly_once() {
        let d = data();
        let cfg = DistConfig::new().with_workers(2).with_batching(128, 64);
        let out = train_dist(&d, &ModelConfig::tgn().with_dims(8, 4), &cfg);
        assert_eq!(out.report.events, d.num_events());
        let mut covered = vec![0usize; d.num_events()];
        for b in &out.batches {
            for c in covered.iter_mut().skip(b.first_id).take(b.events) {
                *c += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "events must stream exactly once"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of batch size")]
    fn straddling_batches_are_rejected() {
        let d = data();
        let cfg = DistConfig::new().with_batching(100, 64);
        let _ = train_dist(&d, &ModelConfig::tgn().with_dims(8, 4), &cfg);
    }
}
