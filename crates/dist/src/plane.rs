//! [`SharedPlane`]: the sharded memory plane N worker threads train
//! against concurrently.
//!
//! The plane owns one [`PlaneShard`] per worker behind its own
//! `RwLock`; a cloned [`SharedPlane`] is a *handle* onto the same
//! shards, so every worker's [`MemoryTgnn`](cascade_models::MemoryTgnn)
//! reads and writes the same node state. Slot bookkeeping is the same
//! [`ShardMap`] the single-owner
//! [`ShardedPlane`](cascade_models::ShardedPlane) uses, and uniform
//! neighbor draws hash by **global** node id, so the shared plane is
//! bit-identical to the monolithic plane for any read sequence.
//!
//! Locking discipline (checked by `conc-lock-order`): shard locks are
//! taken **one at a time** — every method acquires a single shard's
//! lock, copies what it needs, and drops the guard before touching any
//! other shard. No held→acquired edge between shard locks ever exists,
//! so the lock graph is trivially cycle-free. The round protocol in
//! [`runtime`](crate::runtime) partitions *writes* by shard ownership
//! and fences phases with barriers, which is what makes the concurrent
//! write schedule deterministic; the plane itself only guarantees each
//! individual access is atomic.

use std::sync::{Arc, RwLock};

use cascade_models::{MemoryPlane, PlaneGeometry, PlaneShard};
use cascade_tensor::Tensor;
use cascade_tgraph::{NeighborRef, NodeId, ShardMap};

/// A handle to shard-partitioned node state shared by worker threads.
///
/// `Clone` produces another handle to the *same* state (the worker
/// entry point); [`MemoryPlane::clone_plane`] produces an independent
/// deep copy, per the trait contract.
pub struct SharedPlane {
    inner: Arc<Inner>,
}

struct Inner {
    geom: PlaneGeometry,
    map: ShardMap,
    shards: Vec<RwLock<PlaneShard>>,
}

impl Clone for SharedPlane {
    fn clone(&self) -> Self {
        SharedPlane {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl SharedPlane {
    /// Builds zeroed shared state for `geom`, partitioned over
    /// `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn new(geom: &PlaneGeometry, num_shards: usize) -> Self {
        let map = ShardMap::new(geom.num_nodes, num_shards);
        let shards = (0..num_shards)
            .map(|s| RwLock::new(PlaneShard::new(geom, map.shard_size(s))))
            .collect();
        SharedPlane {
            inner: Arc::new(Inner {
                geom: *geom,
                map,
                shards,
            }),
        }
    }

    /// The node → (shard, slot) assignment.
    pub fn map(&self) -> &ShardMap {
        &self.inner.map
    }

    /// The plane's geometry.
    pub fn geometry(&self) -> &PlaneGeometry {
        &self.inner.geom
    }

    /// Number of handles alive (1 = this is the only owner).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    fn slot(&self, node: NodeId) -> (usize, NodeId) {
        let (shard, slot) = self.inner.map.assignment(node);
        (shard, NodeId(slot as u32))
    }
}

impl MemoryPlane for SharedPlane {
    fn num_nodes(&self) -> usize {
        self.inner.geom.num_nodes
    }

    fn memory_dim(&self) -> usize {
        self.inner.geom.memory_dim
    }

    fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard_of(&self, node: NodeId) -> usize {
        self.inner.map.shard_of(node)
    }

    fn memory_read(&self, node: NodeId) -> Vec<f32> {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.memory.snapshot(slot)
    }

    fn memory_last_update(&self, node: NodeId) -> f64 {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.memory.last_update(slot)
    }

    fn memory_gather(&self, nodes: &[NodeId]) -> Tensor {
        let d = self.inner.geom.memory_dim;
        let mut out = Vec::with_capacity(nodes.len() * d);
        for &n in nodes {
            let (s, slot) = self.slot(n);
            let shard = self.inner.shards[s]
                .read()
                .expect("shard locks are never poisoned");
            out.extend_from_slice(shard.memory.read(slot));
        }
        Tensor::from_vec(out, [nodes.len(), d])
    }

    fn memory_write(&mut self, node: NodeId, values: &[f32], time: f64) {
        let (s, slot) = self.slot(node);
        let mut shard = self.inner.shards[s]
            .write()
            .expect("shard locks are never poisoned");
        shard.memory.write(slot, values, time);
    }

    fn mailbox_capacity(&self) -> usize {
        self.inner.geom.mailbox_capacity
    }

    fn mailbox_msg_dim(&self) -> usize {
        self.inner.geom.raw_msg_dim
    }

    fn mailbox_messages(&self, node: NodeId) -> Vec<Vec<f32>> {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.mailbox.messages(slot).to_vec()
    }

    fn mailbox_has_messages(&self, node: NodeId) -> bool {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.mailbox.has_messages(slot)
    }

    fn mailbox_push(&mut self, node: NodeId, msg: Vec<f32>) {
        let (s, slot) = self.slot(node);
        let mut shard = self.inner.shards[s]
            .write()
            .expect("shard locks are never poisoned");
        shard.mailbox.push(slot, msg);
    }

    fn mailbox_clear(&mut self, node: NodeId) {
        let (s, slot) = self.slot(node);
        let mut shard = self.inner.shards[s]
            .write()
            .expect("shard locks are never poisoned");
        shard.mailbox.clear_node(slot);
    }

    fn adj_insert_half(&mut self, owner: NodeId, neighbor: NeighborRef) {
        let (s, slot) = self.slot(owner);
        let mut shard = self.inner.shards[s]
            .write()
            .expect("shard locks are never poisoned");
        shard.adjacency.insert_ref(slot, neighbor);
    }

    fn adj_degree(&self, node: NodeId) -> usize {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.adjacency.degree(slot)
    }

    fn adj_most_recent(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.adjacency.most_recent(slot, k)
    }

    fn adj_uniform(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        let (s, slot) = self.slot(node);
        let shard = self.inner.shards[s]
            .read()
            .expect("shard locks are never poisoned");
        shard.adjacency.uniform_keyed(slot, node, k)
    }

    fn reset(&mut self) {
        // One shard at a time; callers fence concurrent access (the
        // runtime resets between round barriers).
        for lock in &self.inner.shards {
            let mut shard = lock.write().expect("shard locks are never poisoned");
            shard.reset();
        }
    }

    fn memory_size_bytes(&self) -> usize {
        let mut total = 0;
        for lock in &self.inner.shards {
            let shard = lock.read().expect("shard locks are never poisoned");
            total += shard.memory.size_bytes();
        }
        total
    }

    fn mailbox_size_bytes(&self) -> usize {
        let mut total = 0;
        for lock in &self.inner.shards {
            let shard = lock.read().expect("shard locks are never poisoned");
            total += shard.mailbox.size_bytes();
        }
        total
    }

    fn clone_plane(&self) -> Box<dyn MemoryPlane> {
        // Deep copy, per the trait contract: the result shares no state
        // with this plane (used by MemoryTgnn::clone, never by workers —
        // workers clone the handle instead).
        let shards = self
            .inner
            .shards
            .iter()
            .map(|lock| {
                let shard = lock.read().expect("shard locks are never poisoned");
                RwLock::new(shard.clone())
            })
            .collect();
        Box::new(SharedPlane {
            inner: Arc::new(Inner {
                geom: self.inner.geom,
                map: self.inner.map.clone(),
                shards,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_models::{LocalPlane, ModelConfig};
    use cascade_tgraph::Event;

    fn geom() -> PlaneGeometry {
        PlaneGeometry::for_config(&ModelConfig::tgn().with_dims(4, 2), 16, 3, 9)
    }

    #[test]
    fn shared_reads_match_local() {
        let g = geom();
        let mut local = LocalPlane::new(&g);
        let mut shared = SharedPlane::new(&g, 4);
        let events = [
            Event::new(0u32, 3u32, 1.0),
            Event::new(5u32, 12u32, 2.0),
            Event::new(0u32, 15u32, 3.0),
        ];
        for (i, e) in events.iter().enumerate() {
            for plane in [&mut local as &mut dyn MemoryPlane, &mut shared] {
                plane.adj_insert(e, i);
                plane.memory_write(e.src, &[i as f32, 0.5, 1.5, 2.5], e.time);
                plane.mailbox_push(e.dst, vec![0.25; 12]);
            }
        }
        for n in 0..16u32 {
            let n = NodeId(n);
            assert_eq!(local.memory_read(n), shared.memory_read(n));
            assert_eq!(local.mailbox_messages(n), shared.mailbox_messages(n));
            assert_eq!(local.adj_most_recent(n, 3), shared.adj_most_recent(n, 3));
            assert_eq!(local.adj_uniform(n, 6), shared.adj_uniform(n, 6));
        }
    }

    #[test]
    fn handles_share_state_but_clone_plane_detaches() {
        let g = geom();
        let mut a = SharedPlane::new(&g, 2);
        let b = a.clone();
        assert_eq!(a.handle_count(), 2);
        a.memory_write(NodeId(7), &[1.0; 4], 5.0);
        assert_eq!(b.memory_read(NodeId(7)), vec![1.0; 4]);

        let mut detached = b.clone_plane();
        detached.memory_write(NodeId(7), &[9.0; 4], 6.0);
        assert_eq!(a.memory_read(NodeId(7)), vec![1.0; 4]);
        assert_eq!(detached.memory_read(NodeId(7)), vec![9.0; 4]);
    }

    #[test]
    fn concurrent_owned_writes_land_in_distinct_shards() {
        let g = geom();
        let plane = SharedPlane::new(&g, 2);
        let map = plane.map().clone();
        std::thread::scope(|scope| {
            for w in 0..2usize {
                let mut handle = plane.clone();
                let map = map.clone();
                scope.spawn(move || {
                    for id in 0..16u32 {
                        let n = NodeId(id);
                        if map.shard_of(n) == w {
                            handle.memory_write(n, &[w as f32 + 1.0; 4], 1.0);
                        }
                    }
                });
            }
        });
        for id in 0..16u32 {
            let n = NodeId(id);
            let expect = map.shard_of(n) as f32 + 1.0;
            assert_eq!(plane.memory_read(n), vec![expect; 4]);
        }
    }
}
