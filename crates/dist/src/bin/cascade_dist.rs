//! `cascade-dist`: shard-partitioned data-parallel TGNN training.
//!
//! ```text
//! cascade_dist --workers 2 --epochs 2                    # in-process threads
//! cascade_dist --mode leader --workers 2 &               # process 0
//! cascade_dist --mode follower --worker 1 --workers 2    # process 1
//! ```
//!
//! Every process synthesizes the identical dataset from
//! `(--dataset, --scale, --data-seed)`, so multi-process runs need no
//! shared filesystem: the only bytes on the wire are round payloads.

use cascade_dist::{run_follower, run_leader, train_dist, DistConfig, DistOutcome, RunClock};
use cascade_models::{save_sharded_state, MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};

struct Args {
    mode: String,
    dataset: String,
    model: String,
    workers: usize,
    worker: usize,
    epochs: usize,
    batch: usize,
    chunk: usize,
    dim: usize,
    scale: f64,
    seed: u64,
    data_seed: u64,
    lr: f32,
    addr: String,
    save: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            mode: "inproc".into(),
            dataset: "wiki".into(),
            model: "tgn".into(),
            workers: 2,
            worker: 0,
            epochs: 1,
            batch: 64,
            chunk: 256,
            dim: 16,
            scale: 0.01,
            seed: 42,
            data_seed: 7,
            lr: 1e-3,
            addr: "127.0.0.1:7744".into(),
            save: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("missing value for {}", name))
            };
            match flag.as_str() {
                "--mode" => a.mode = val("--mode")?,
                "--dataset" => a.dataset = val("--dataset")?,
                "--model" => a.model = val("--model")?,
                "--workers" => a.workers = parse(&val("--workers")?)?,
                "--worker" => a.worker = parse(&val("--worker")?)?,
                "--epochs" => a.epochs = parse(&val("--epochs")?)?,
                "--batch" => a.batch = parse(&val("--batch")?)?,
                "--chunk" => a.chunk = parse(&val("--chunk")?)?,
                "--dim" => a.dim = parse(&val("--dim")?)?,
                "--scale" => a.scale = parse(&val("--scale")?)?,
                "--seed" => a.seed = parse(&val("--seed")?)?,
                "--data-seed" => a.data_seed = parse(&val("--data-seed")?)?,
                "--lr" => a.lr = parse(&val("--lr")?)?,
                "--addr" => a.addr = val("--addr")?,
                "--save" => a.save = Some(val("--save")?),
                "--help" | "-h" => {
                    print_usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {}", other)),
            }
        }
        Ok(a)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{}'", s))
}

fn print_usage() {
    eprintln!(
        "cascade-dist: shard-partitioned data-parallel TGNN training\n\n\
         --mode M       inproc|leader|follower            (default inproc)\n\
         --dataset D    wiki|reddit|mooc                  (default wiki)\n\
         --model M      jodie|tgn|apan|dysat|tgat         (default tgn)\n\
         --workers N    worker (= shard) count            (default 2)\n\
         --worker N     this follower's index, 1..N       (follower mode)\n\
         --epochs N --batch N --chunk N --dim N --lr F\n\
         --scale F      synth dataset scale               (default 0.01)\n\
         --seed N       model seed                        (default 42)\n\
         --data-seed N  synth dataset seed                (default 7)\n\
         --addr A       leader bind / connect address     (default 127.0.0.1:7744)\n\
         --save P       write a CSC3 sharded checkpoint (one shard group\n\
                        per worker) that cascade_serve can boot from\n\n\
         all processes of one run must agree on every flag except\n\
         --mode and --worker"
    );
}

fn build_dataset(args: &Args) -> Result<Dataset, String> {
    let profile = match args.dataset.to_lowercase().as_str() {
        "wiki" => SynthConfig::wiki(),
        "reddit" => SynthConfig::reddit(),
        "mooc" => SynthConfig::mooc(),
        other => return Err(format!("unknown dataset {}", other)),
    };
    Ok(profile.with_scale(args.scale).generate(args.data_seed))
}

fn build_model_config(args: &Args) -> Result<ModelConfig, String> {
    let base = match args.model.to_lowercase().as_str() {
        "jodie" => ModelConfig::jodie(),
        "tgn" => ModelConfig::tgn(),
        "apan" => ModelConfig::apan(),
        "dysat" => ModelConfig::dysat(),
        "tgat" => ModelConfig::tgat(),
        other => return Err(format!("unknown model {}", other)),
    };
    Ok(base.with_dims(args.dim, (args.dim / 2).max(2)))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {}", e);
        print_usage();
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let data = build_dataset(&args)?;
    let model_cfg = build_model_config(&args)?;
    let cfg = DistConfig {
        workers: args.workers,
        chunk_size: args.chunk,
        batch_size: args.batch,
        epochs: args.epochs,
        lr: args.lr,
        clip_norm: Some(5.0),
        seed: args.seed,
    };
    println!(
        "{} on {} ({} events, {} nodes) | mode {}",
        args.model,
        args.dataset,
        data.num_events(),
        data.num_nodes(),
        args.mode
    );

    // The library's training path is clock-free by design (see
    // `DistReport`); wall time is owned here, at the edge.
    let clock = RunClock::start();
    let outcome: DistOutcome = match args.mode.as_str() {
        "inproc" => train_dist(&data, &model_cfg, &cfg),
        "leader" => {
            println!("leader listening on {}", args.addr);
            run_leader(&args.addr, &data, &model_cfg, &cfg).map_err(|e| e.to_string())?
        }
        "follower" => {
            println!("follower {} connecting to {}", args.worker, args.addr);
            run_follower(&args.addr, args.worker, &data, &model_cfg, &cfg)
                .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown mode {}", other)),
    };

    let elapsed = clock.elapsed();
    println!("{}", outcome.report);
    println!(
        "{} events in {:.2?} ({:.0} ev/s)",
        outcome.report.events,
        elapsed,
        outcome.report.events_per_sec(elapsed)
    );
    for (i, loss) in outcome.report.epoch_losses.iter().enumerate() {
        println!("epoch {:>2}: loss {:.4}", i, loss);
    }
    println!(
        "final state: {} bytes, {} batches logged",
        outcome.state.len(),
        outcome.batches.len()
    );
    if let Some(path) = &args.save {
        // Rehydrate the exported state into a fresh model so the
        // checkpoint layer can write it sharded; the watermark is one
        // full pass over the stream (the final epoch's memories).
        let mut model = MemoryTgnn::new(
            model_cfg.clone(),
            data.num_nodes(),
            data.features().dim(),
            args.seed,
        );
        model.import_state(&outcome.state)?;
        save_sharded_state(
            &model,
            std::path::Path::new(path),
            data.num_events() as u64,
            args.workers,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "saved CSC3 checkpoint ({} shard group(s)) to {}",
            args.workers, path
        );
    }
    Ok(())
}
