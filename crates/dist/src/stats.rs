//! Dist-run telemetry: the one module of `cascade-dist` allowed to read
//! wall clocks (`det-wallclock` allowlist).
//!
//! Everything here flows into reports and bench JSON only — no value
//! derived from a clock ever reaches a batch plan, a gradient, or a
//! memory write. The training modules receive an opaque [`RunClock`]
//! and hand it back for the final [`DistReport`].

use std::fmt;
use std::time::{Duration, Instant};

/// A started wall-clock for one training run.
#[derive(Clone, Copy, Debug)]
pub struct RunClock {
    start: Instant,
}

impl RunClock {
    /// Starts the clock.
    pub fn start() -> Self {
        RunClock {
            start: Instant::now(),
        }
    }

    /// Time since [`start`](Self::start).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// What a dist training run did. Deliberately clock-free: the training
/// path never touches wall time, so its outputs are provably untainted
/// — callers that want throughput hold their own [`RunClock`] and pair
/// it with [`DistReport::events_per_sec`].
#[derive(Clone, Debug)]
pub struct DistReport {
    /// Worker (= shard) count.
    pub workers: usize,
    /// Epochs trained.
    pub epochs: usize,
    /// Synchronous rounds executed (across all epochs).
    pub rounds: usize,
    /// Events processed (across all workers and epochs).
    pub events: usize,
    /// Event-weighted mean training loss per epoch, aggregated over the
    /// round payloads in worker-index order.
    pub epoch_losses: Vec<f32>,
}

impl DistReport {
    /// Aggregate throughput given an externally-measured wall-clock.
    pub fn events_per_sec(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for DistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} worker(s) | {} epoch(s) | {} round(s) | {} events",
            self.workers, self.epochs, self.rounds, self.events
        )?;
        if let Some(last) = self.epoch_losses.last() {
            write!(f, " | final epoch loss {:.4}", last)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero_elapsed() {
        let r = DistReport {
            workers: 2,
            epochs: 1,
            rounds: 3,
            events: 600,
            epoch_losses: vec![0.7],
        };
        assert_eq!(r.events_per_sec(Duration::ZERO), 0.0);
        let shown = r.to_string();
        assert!(shown.contains("2 worker(s)"));
        assert!(shown.contains("0.7000"));
    }
}
