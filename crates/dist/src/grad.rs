//! Deterministic gradient exchange: collect, all-reduce in worker-index
//! order, install.
//!
//! Every worker trains a full parameter replica initialized from the
//! same seed; replicas stay bit-identical because each installs the
//! *same* reduced gradients and steps its own optimizer identically.
//! The reduction is a fixed-order sum — contribution `w` is always added
//! before contribution `w+1` — scaled by the reciprocal of the
//! contributor count, so the result depends only on (worker count,
//! event stream, seed), never on thread scheduling. With a single
//! contributor the gradients are installed **verbatim** (no sum, no
//! scale), which is what makes an N=1 dist run bit-identical to the
//! serial trainer.

use cascade_tensor::Tensor;

/// One worker's gradients, one entry per parameter in
/// `model.parameters()` order; `None` where the backward pass left no
/// gradient (unused parameter).
pub type GradSet = Vec<Option<Vec<f32>>>;

/// Copies the current gradients out of `params` (after `backward()`,
/// before any optimizer step clears them).
pub fn collect_grads(params: &[Tensor]) -> GradSet {
    params.iter().map(|p| p.grad()).collect()
}

/// Reduces the active workers' gradient sets in worker-index order.
///
/// `contributions` must be ordered by worker index (the caller drops
/// idle workers but never reorders). Per parameter: the present
/// gradients are summed in that fixed order and scaled by
/// `1 / contributor_count`; parameters no contributor touched stay
/// `None`. A single contribution is returned verbatim.
///
/// # Panics
///
/// Panics if `contributions` is empty or two contributions disagree on
/// a parameter's length.
pub fn all_reduce(contributions: &[&GradSet]) -> GradSet {
    assert!(!contributions.is_empty(), "all_reduce over zero workers");
    if contributions.len() == 1 {
        return contributions[0].clone();
    }
    let num_params = contributions[0].len();
    for c in contributions {
        assert_eq!(
            c.len(),
            num_params,
            "gradient sets disagree on parameter count"
        );
    }
    let mut reduced: GradSet = Vec::with_capacity(num_params);
    for i in 0..num_params {
        let mut acc: Option<Vec<f32>> = None;
        let mut count = 0usize;
        for c in contributions {
            if let Some(g) = &c[i] {
                match &mut acc {
                    None => acc = Some(g.clone()),
                    Some(sum) => {
                        assert_eq!(sum.len(), g.len(), "gradient length mismatch");
                        for (a, b) in sum.iter_mut().zip(g) {
                            *a += b;
                        }
                    }
                }
                count += 1;
            }
        }
        if let Some(sum) = &mut acc {
            if count > 1 {
                let scale = 1.0 / count as f32;
                for a in sum.iter_mut() {
                    *a *= scale;
                }
            }
        }
        reduced.push(acc);
    }
    reduced
}

/// Installs a reduced gradient set into `params`: `Some` entries
/// overwrite the parameter's gradient, `None` entries clear it, so the
/// subsequent clip + step sees exactly the reduced state on every
/// worker regardless of what its own backward pass produced.
///
/// # Panics
///
/// Panics if `reduced` and `params` disagree in length.
pub fn install_grads(params: &[Tensor], reduced: &GradSet) {
    assert_eq!(
        params.len(),
        reduced.len(),
        "gradient set / parameter count mismatch"
    );
    for (p, g) in params.iter().zip(reduced) {
        match g {
            Some(g) => p.set_grad(g),
            None => p.zero_grad(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_contribution_is_verbatim() {
        let a: GradSet = vec![Some(vec![0.1, -0.2]), None];
        let out = all_reduce(&[&a]);
        assert_eq!(out, a);
    }

    #[test]
    fn reduction_averages_in_worker_order() {
        let a: GradSet = vec![Some(vec![1.0, 3.0]), None, Some(vec![2.0])];
        let b: GradSet = vec![Some(vec![3.0, 5.0]), Some(vec![7.0]), None];
        let out = all_reduce(&[&a, &b]);
        assert_eq!(out[0], Some(vec![2.0, 4.0]));
        // Only worker 1 touched parameter 1: its gradient is verbatim.
        assert_eq!(out[1], Some(vec![7.0]));
        assert_eq!(out[2], Some(vec![2.0]));
    }

    #[test]
    fn install_round_trips_through_tensors() {
        let p = Tensor::from_vec(vec![0.0; 3], [3]).requires_grad();
        let q = Tensor::from_vec(vec![0.0; 2], [2]).requires_grad();
        let params = [p, q];
        let reduced: GradSet = vec![Some(vec![0.5, 0.25, 0.125]), None];
        install_grads(&params, &reduced);
        assert_eq!(collect_grads(&params), reduced);
    }
}
