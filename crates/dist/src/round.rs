//! Round payloads and their wire codec.
//!
//! One training round moves exactly one [`RoundPayload`] per active
//! worker: the worker's batch (events + feature rows, globally
//! addressed), its write-back ticket, and its gradient contribution.
//! The in-process runtime passes payloads by value; the TCP transport
//! serializes them with the little-endian codec here. Both paths apply
//! the identical payload sequence, which is what keeps the two modes
//! bit-identical.
//!
//! The codec is deliberately dumb: fixed-order fields, explicit
//! lengths, no compression, every length validated before allocation.
//! A malformed frame surfaces as a typed [`WireError`], never a panic —
//! a dist peer must not be able to take down the process with a short
//! read.

use cascade_models::BatchPending;
use cascade_tgraph::{EdgeFeatures, Event, NodeId};

use crate::grad::GradSet;

/// Upper bound accepted for any decoded element count (events, centers,
/// parameters, floats per buffer). Generous for real payloads while
/// keeping a corrupt length field from forcing a huge allocation.
const MAX_DECODE_LEN: usize = 1 << 28;

/// A decode failure: what was being read and why it failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Field being decoded when the failure occurred.
    pub field: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        WireError {
            field,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode failed at {}: {}", self.field, self.message)
    }
}

impl std::error::Error for WireError {}

/// One worker's contribution to a training round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundPayload {
    /// Originating worker index.
    pub worker: usize,
    /// Global stream id of `events[0]`.
    pub first_id: usize,
    /// The batch's events, chronologically ordered.
    pub events: Vec<Event>,
    /// Edge-feature width (0 when the stream has no features).
    pub feat_dim: usize,
    /// Row-major feature rows for `events` (`events.len() * feat_dim`).
    pub feat_rows: Vec<f32>,
    /// Write-back ticket: distinct batch endpoints in first-appearance
    /// order.
    pub centers: Vec<NodeId>,
    /// Per-center had-pending-messages flags.
    pub has_msg: Vec<bool>,
    /// Row-major updated memories, one row per center.
    pub post: Vec<f32>,
    /// The worker's gradient contribution.
    pub grads: GradSet,
    /// Batch loss (telemetry; never fed back into computation).
    pub loss: f32,
}

impl RoundPayload {
    /// Reassembles the write-back ticket.
    pub fn pending(&self) -> BatchPending {
        BatchPending::from_parts(
            self.centers.clone(),
            self.has_msg.clone(),
            self.post.clone(),
        )
    }

    /// The payload's feature rows as a globally-addressed table:
    /// zero-filled up to `first_id`, then this batch's rows, so
    /// `row(first_id + i)` works unchanged. Note both transports apply
    /// rounds against the dataset's full feature table instead (neighbor
    /// embedding reads arbitrary earlier events' rows, which a
    /// batch-local table cannot cover) — this view exists so the wire
    /// format stays self-describing and testable in isolation.
    pub fn features(&self) -> EdgeFeatures {
        let mut feats = EdgeFeatures::zeros(self.first_id + self.events.len(), self.feat_dim);
        for i in 0..self.events.len() {
            feats.set_row(
                self.first_id + i,
                &self.feat_rows[i * self.feat_dim..(i + 1) * self.feat_dim],
            );
        }
        feats
    }

    /// Serializes the payload (little-endian, fixed field order).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_usize(&mut buf, self.worker);
        put_usize(&mut buf, self.first_id);
        put_usize(&mut buf, self.events.len());
        for e in &self.events {
            buf.extend_from_slice(&e.src.0.to_le_bytes());
            buf.extend_from_slice(&e.dst.0.to_le_bytes());
            buf.extend_from_slice(&e.time.to_le_bytes());
        }
        put_usize(&mut buf, self.feat_dim);
        put_f32s(&mut buf, &self.feat_rows);
        put_usize(&mut buf, self.centers.len());
        for c in &self.centers {
            buf.extend_from_slice(&c.0.to_le_bytes());
        }
        for &m in &self.has_msg {
            buf.push(m as u8);
        }
        put_f32s(&mut buf, &self.post);
        put_usize(&mut buf, self.grads.len());
        for g in &self.grads {
            match g {
                Some(g) => {
                    buf.push(1);
                    put_f32s(&mut buf, g);
                }
                None => buf.push(0),
            }
        }
        buf.extend_from_slice(&self.loss.to_le_bytes());
        buf
    }

    /// Decodes a payload serialized by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, trailing bytes, an implausible
    /// length field, or internal inconsistency (flag count vs center
    /// count, feature row count vs event count).
    pub fn decode(bytes: &[u8]) -> Result<RoundPayload, WireError> {
        let mut cur = Cursor::new(bytes);
        let worker = cur.usize("worker")?;
        let first_id = cur.usize("first_id")?;
        let num_events = cur.len("events", 1)?;
        let mut events = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            let src = cur.u32("event src")?;
            let dst = cur.u32("event dst")?;
            let time = cur.f64("event time")?;
            events.push(Event::new(src, dst, time));
        }
        let feat_dim = cur.len("feat_dim", 1)?;
        let feat_rows = cur.f32s("feat_rows")?;
        if feat_rows.len() != num_events * feat_dim {
            return Err(WireError::new(
                "feat_rows",
                format!(
                    "{} floats for {} events of dim {}",
                    feat_rows.len(),
                    num_events,
                    feat_dim
                ),
            ));
        }
        let num_centers = cur.len("centers", 1)?;
        let mut centers = Vec::with_capacity(num_centers);
        for _ in 0..num_centers {
            centers.push(NodeId(cur.u32("center id")?));
        }
        let mut has_msg = Vec::with_capacity(num_centers);
        for _ in 0..num_centers {
            has_msg.push(cur.u8("has_msg flag")? != 0);
        }
        let post = cur.f32s("post")?;
        if num_centers > 0 && post.len() % num_centers != 0 {
            return Err(WireError::new(
                "post",
                format!("{} floats for {} centers", post.len(), num_centers),
            ));
        }
        let num_params = cur.len("grads", 1)?;
        let mut grads: GradSet = Vec::with_capacity(num_params);
        for _ in 0..num_params {
            if cur.u8("grad presence")? != 0 {
                grads.push(Some(cur.f32s("grad values")?));
            } else {
                grads.push(None);
            }
        }
        let loss = f32::from_le_bytes(cur.f32_bits("loss")?);
        cur.finish("payload")?;
        Ok(RoundPayload {
            worker,
            first_id,
            events,
            feat_dim,
            feat_rows,
            centers,
            has_msg,
            post,
            grads,
            loss,
        })
    }
}

/// One message of the leader/follower round protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Follower → leader on connect: "I am worker `worker` of
    /// `workers`".
    Hello {
        /// Claimed worker index.
        worker: u32,
        /// Claimed worker count (must match the leader's).
        workers: u32,
    },
    /// Follower → leader each round: its contribution, or `None` when
    /// its partition is exhausted for the epoch.
    Payload(Option<RoundPayload>),
    /// Leader → followers: the full round in worker-index order
    /// (`bundle[w]` is worker `w`'s contribution).
    Round(Vec<Option<RoundPayload>>),
    /// Leader → followers: all partitions exhausted; reset state and
    /// start the next epoch.
    EpochEnd,
    /// Leader → followers: training is over.
    Done,
}

const TAG_HELLO: u8 = 1;
const TAG_PAYLOAD: u8 = 2;
const TAG_ROUND: u8 = 3;
const TAG_EPOCH_END: u8 = 4;
const TAG_DONE: u8 = 5;

impl Frame {
    /// Serializes the frame body (transport adds the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Frame::Hello { worker, workers } => {
                buf.push(TAG_HELLO);
                buf.extend_from_slice(&worker.to_le_bytes());
                buf.extend_from_slice(&workers.to_le_bytes());
            }
            Frame::Payload(p) => {
                buf.push(TAG_PAYLOAD);
                put_opt_payload(&mut buf, p);
            }
            Frame::Round(bundle) => {
                buf.push(TAG_ROUND);
                put_usize(&mut buf, bundle.len());
                for p in bundle {
                    put_opt_payload(&mut buf, p);
                }
            }
            Frame::EpochEnd => buf.push(TAG_EPOCH_END),
            Frame::Done => buf.push(TAG_DONE),
        }
        buf
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an unknown tag or malformed body.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cursor::new(bytes);
        let tag = cur.u8("frame tag")?;
        let frame = match tag {
            TAG_HELLO => {
                let worker = cur.u32("hello worker")?;
                let workers = cur.u32("hello workers")?;
                Frame::Hello { worker, workers }
            }
            TAG_PAYLOAD => Frame::Payload(take_opt_payload(&mut cur)?),
            TAG_ROUND => {
                let n = cur.len("round size", 64)?;
                let mut bundle = Vec::with_capacity(n);
                for _ in 0..n {
                    bundle.push(take_opt_payload(&mut cur)?);
                }
                Frame::Round(bundle)
            }
            TAG_EPOCH_END => Frame::EpochEnd,
            TAG_DONE => Frame::Done,
            other => {
                return Err(WireError::new(
                    "frame tag",
                    format!("unknown tag {}", other),
                ))
            }
        };
        cur.finish("frame")?;
        Ok(frame)
    }
}

fn put_opt_payload(buf: &mut Vec<u8>, p: &Option<RoundPayload>) {
    match p {
        Some(p) => {
            buf.push(1);
            let body = p.encode();
            put_usize(buf, body.len());
            buf.extend_from_slice(&body);
        }
        None => buf.push(0),
    }
}

fn take_opt_payload(cur: &mut Cursor<'_>) -> Result<Option<RoundPayload>, WireError> {
    if cur.u8("payload presence")? == 0 {
        return Ok(None);
    }
    let len = cur.len("payload length", 64)?;
    let body = cur.bytes("payload body", len)?;
    Ok(Some(RoundPayload::decode(body)?))
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    buf.extend_from_slice(&(v as u64).to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, values: &[f32]) {
    put_usize(buf, values.len());
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// A bounds-checked read cursor over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, off: 0 }
    }

    fn bytes(&mut self, field: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .off
            .checked_add(n)
            .ok_or_else(|| WireError::new(field, format!("length {} overflows the cursor", n)))?;
        if end > self.bytes.len() {
            return Err(WireError::new(
                field,
                format!("needs {} bytes, {} remain", n, self.bytes.len() - self.off),
            ));
        }
        let out = &self.bytes[self.off..end];
        self.off = end;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(field, 1)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        let b = self.bytes(field, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, WireError> {
        let b = self.bytes(field, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_le_bytes(a))
    }

    fn f32_bits(&mut self, field: &'static str) -> Result<[u8; 4], WireError> {
        let b = self.bytes(field, 4)?;
        Ok([b[0], b[1], b[2], b[3]])
    }

    fn usize(&mut self, field: &'static str) -> Result<usize, WireError> {
        let b = self.bytes(field, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        let v = u64::from_le_bytes(a);
        usize::try_from(v).map_err(|_| WireError::new(field, format!("{} exceeds usize range", v)))
    }

    /// A length field, rejected when implausibly large (`scale` is a
    /// rough per-element byte weight used to tighten the bound).
    fn len(&mut self, field: &'static str, scale: usize) -> Result<usize, WireError> {
        let v = self.usize(field)?;
        if v > MAX_DECODE_LEN / scale.max(1) {
            return Err(WireError::new(
                field,
                format!("length {} exceeds the decode bound", v),
            ));
        }
        Ok(v)
    }

    fn f32s(&mut self, field: &'static str) -> Result<Vec<f32>, WireError> {
        let n = self.len(field, 4)?;
        let raw = self.bytes(field, n * 4)?;
        let mut out = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(out)
    }

    fn finish(&self, field: &'static str) -> Result<(), WireError> {
        if self.off != self.bytes.len() {
            return Err(WireError::new(
                field,
                format!("{} trailing bytes", self.bytes.len() - self.off),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> RoundPayload {
        RoundPayload {
            worker: 1,
            first_id: 256,
            events: vec![Event::new(3u32, 9u32, 1.5), Event::new(9u32, 4u32, 2.5)],
            feat_dim: 2,
            feat_rows: vec![0.1, 0.2, 0.3, 0.4],
            centers: vec![NodeId(3), NodeId(9), NodeId(4)],
            has_msg: vec![true, false, true],
            post: vec![1.0; 12],
            grads: vec![Some(vec![0.5, -0.5]), None, Some(vec![2.0])],
            loss: 0.693,
        }
    }

    #[test]
    fn payload_round_trips() {
        let p = payload();
        let back = RoundPayload::decode(&p.encode()).expect("own encoding decodes");
        assert_eq!(back, p);
        assert_eq!(back.pending().centers(), p.centers.as_slice());
        assert_eq!(back.features().row(256), &[0.1, 0.2]);
        assert_eq!(back.features().row(257), &[0.3, 0.4]);
        // Rows before the payload's range are zero-filled padding.
        assert_eq!(back.features().row(0), &[0.0, 0.0]);
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Hello {
                worker: 1,
                workers: 2,
            },
            Frame::Payload(Some(payload())),
            Frame::Payload(None),
            Frame::Round(vec![Some(payload()), None]),
            Frame::EpochEnd,
            Frame::Done,
        ];
        for f in frames {
            let back = Frame::decode(&f.encode()).expect("own encoding decodes");
            assert_eq!(back, f);
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = payload().encode();
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                RoundPayload::decode(&bytes[..cut]).is_err(),
                "cut at {}",
                cut
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::Done.encode();
        bytes.push(0);
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn absurd_length_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        put_usize(&mut bytes, 0); // worker
        put_usize(&mut bytes, 0); // first_id
        put_usize(&mut bytes, u64::MAX as usize); // event count
        let err = RoundPayload::decode(&bytes).expect_err("bound must reject");
        assert_eq!(err.field, "events");
    }
}
