//! `cascade-dist`: shard-partitioned data-parallel training for the
//! Cascade TGNN stack.
//!
//! The crate implements the "memory plane" half of distributed TGNN
//! training (DESIGN.md §12): node memory, mailboxes, and adjacency are
//! partitioned over N shards by the workspace-wide
//! [`ShardMap`](cascade_tgraph::ShardMap) hash, and N workers — threads
//! over one [`SharedPlane`], or processes over the TCP transport — each
//! own one shard, stream their round-robin partition of the CEVT chunk
//! stream, and exchange gradients through a deterministic
//! worker-index-ordered all-reduce.
//!
//! Determinism contract:
//!
//! * **N = 1** is bit-identical to the serial trainer — same losses,
//!   same logits, same memories, same post-step parameters (enforced by
//!   the `identity` integration tests and the `det-taint` lint gate).
//! * **N > 1** is bit-reproducible for a given `(workers, seed,
//!   stream)` across runs *and* across transports, but deliberately
//!   diverges from serial training by a bounded amount: same-round
//!   batches read memory that excludes each other's updates (one round
//!   of staleness, DistTGL-style) and their gradients are averaged
//!   rather than applied sequentially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grad;
mod plane;
mod round;
mod runtime;
mod stats;
mod tcp;

pub use grad::{all_reduce, collect_grads, install_grads, GradSet};
pub use plane::SharedPlane;
pub use round::{Frame, RoundPayload, WireError};
pub use runtime::{train_dist, BatchRecord, DistConfig, DistOutcome};
pub use stats::{DistReport, RunClock};
pub use tcp::{run_follower, run_leader, run_leader_on, DistError};
