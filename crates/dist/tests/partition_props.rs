//! Seeded property tests for the shard / chunk partition layer —
//! the coverage guarantees `cascade-tgraph` promises in its docs:
//!
//! * the shard map assigns every node to exactly one (shard, slot),
//!   identically across runs and independent of how many *other* nodes
//!   exist per shard;
//! * the round-robin chunk partition streams every event to exactly one
//!   worker, in order, for any worker count;
//! * the store-side `route_chunks` plan predicts exactly what each
//!   worker streams.

use cascade_store::{export_dataset, route_chunks, scan_chunks};
use cascade_tgraph::{
    shard_of_node, EventSource, InMemorySource, NodeId, PartitionedSource, ShardMap, SynthConfig,
};
use cascade_util::{check, prop_assert};

#[test]
fn shard_map_covers_every_node_exactly_once() {
    check("shard_map_exactly_once", |g| {
        let nodes = g.usize_in(1..600);
        let shards = g.usize_in(1..9);
        let map = ShardMap::new(nodes, shards);
        let mut seen = vec![0usize; nodes];
        let mut slot_seen: Vec<Vec<bool>> = (0..shards)
            .map(|s| vec![false; map.shard_size(s)])
            .collect();
        for (id, count) in seen.iter_mut().enumerate() {
            let n = NodeId(id as u32);
            let (shard, slot) = map.assignment(n);
            prop_assert!(shard < shards, "shard {} out of range", shard);
            prop_assert!(
                shard == map.shard_of(n) && shard == shard_of_node(n, shards),
                "assignment disagrees with shard_of for node {}",
                id
            );
            prop_assert!(slot < map.shard_size(shard), "slot {} out of range", slot);
            prop_assert!(
                !slot_seen[shard][slot],
                "slot ({}, {}) assigned twice",
                shard,
                slot
            );
            slot_seen[shard][slot] = true;
            *count += 1;
        }
        prop_assert!(
            seen.iter().all(|&c| c == 1),
            "a node was not covered exactly once"
        );
        let total: usize = (0..shards).map(|s| map.shard_size(s)).sum();
        prop_assert!(
            total == nodes,
            "shard sizes sum to {} for {} nodes",
            total,
            nodes
        );

        // Stability: the same node maps to the same shard in a fresh
        // map, and adding workers never reshuffles *within* a run.
        let again = ShardMap::new(nodes, shards);
        for id in 0..nodes {
            let n = NodeId(id as u32);
            prop_assert!(
                map.assignment(n) == again.assignment(n),
                "assignment of node {} changed across identically-built maps",
                id
            );
        }
        Ok(())
    });
}

#[test]
fn chunk_partition_streams_every_event_exactly_once() {
    check("chunk_partition_exactly_once", |g| {
        let scale = g.f64_in(0.001..0.004);
        let data = SynthConfig::wiki().with_scale(scale).generate(g.u64());
        let chunk_size = g.usize_in(16..200);
        let workers = g.usize_in(1..5);

        let mut covered = vec![0usize; data.num_events()];
        for w in 0..workers {
            let mut source =
                PartitionedSource::new(InMemorySource::from_dataset(&data, chunk_size), w, workers);
            let mut last_base = None;
            while let Some(chunk) = source.next_chunk().map_err(|e| e.to_string())? {
                prop_assert!(
                    chunk.index % workers == w,
                    "worker {} streamed foreign chunk {}",
                    w,
                    chunk.index
                );
                if let Some(prev) = last_base {
                    prop_assert!(chunk.base > prev, "chunks arrived out of order");
                }
                last_base = Some(chunk.base);
                for (i, e) in chunk.events.iter().enumerate() {
                    let id = chunk.base + i;
                    prop_assert!(id < covered.len(), "event id {} out of range", id);
                    prop_assert!(
                        *e == data.stream().events()[id],
                        "event {} differs from the dataset",
                        id
                    );
                    covered[id] += 1;
                }
            }
        }
        prop_assert!(
            covered.iter().all(|&c| c == 1),
            "union over {} workers missed or duplicated events",
            workers
        );
        Ok(())
    });
}

#[test]
fn route_plan_predicts_streamed_partitions() {
    check("route_plan_matches_streaming", |g| {
        let data = SynthConfig::wiki()
            .with_scale(g.f64_in(0.001..0.003))
            .generate(g.u64());
        let chunk_size = g.usize_in(16..128);
        let workers = g.usize_in(1..5);
        let path = std::env::temp_dir().join(format!(
            "cascade-dist-route-{}-{}.evt",
            std::process::id(),
            g.u64()
        ));
        export_dataset(&data, &path, chunk_size).map_err(|e| e.to_string())?;
        let (_meta, summaries) = scan_chunks(&path).map_err(|e| e.to_string())?;
        let plan = route_chunks(&summaries, workers);
        let result: Result<(), String> = (|| {
            for w in 0..workers {
                let mut source = PartitionedSource::new(
                    InMemorySource::from_dataset(&data, chunk_size),
                    w,
                    workers,
                );
                let mut chunks = Vec::new();
                let mut events = 0usize;
                while let Some(chunk) = source.next_chunk().map_err(|e| e.to_string())? {
                    chunks.push(chunk.index);
                    events += chunk.events.len();
                }
                prop_assert!(
                    plan.chunks[w] == chunks,
                    "plan chunks {:?} vs streamed {:?} for worker {}",
                    plan.chunks[w],
                    chunks,
                    w
                );
                prop_assert!(
                    plan.events[w] == events,
                    "plan predicts {} events, worker {} streamed {}",
                    plan.events[w],
                    w,
                    events
                );
            }
            Ok(())
        })();
        let _ = std::fs::remove_file(&path);
        result
    });
}
