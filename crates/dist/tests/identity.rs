//! The dist determinism contract (DESIGN.md §12):
//!
//! * N = 1 is **bit-identical** to the serial training loop — same
//!   per-batch loss bits, same logits, same memories and mailboxes,
//!   same post-step parameters, same optimizer state.
//! * N > 1 is bit-reproducible run-to-run for a fixed `(workers, seed,
//!   stream)` and diverges from serial only through the documented
//!   bounded-staleness model.

use cascade_dist::{train_dist, DistConfig, SharedPlane};
use cascade_models::{MemoryTgnn, ModelConfig, PlaneGeometry};
use cascade_nn::{clip_grad_norm, Adam, Module};
use cascade_tgraph::{Dataset, SynthConfig};

const SEED: u64 = 21;
const BATCH: usize = 64;
const CHUNK: usize = 128;
const EPOCHS: usize = 2;
const LR: f32 = 1e-3;
const CLIP: f32 = 5.0;

fn data() -> Dataset {
    SynthConfig::wiki().with_scale(0.004).generate(13)
}

fn model_cfg() -> ModelConfig {
    ModelConfig::tgn().with_dims(8, 4)
}

fn dist_cfg(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        chunk_size: CHUNK,
        batch_size: BATCH,
        epochs: EPOCHS,
        lr: LR,
        clip_norm: Some(CLIP),
        seed: SEED,
    }
}

struct SerialRun {
    losses: Vec<f32>,
    state: Vec<u8>,
    opt_state: Vec<u8>,
}

/// The serial reference loop, written out explicitly: forward →
/// backward → clip → step → apply → arena trim per batch, state reset
/// at each epoch start. Batch boundaries match the dist cutter because
/// `CHUNK` is a multiple of `BATCH` and only the final chunk is short.
fn serial_reference(data: &Dataset) -> SerialRun {
    let feat_dim = data.features().dim();
    let mut model = MemoryTgnn::new(model_cfg(), data.num_nodes(), feat_dim, SEED);
    let params = model.parameters();
    let mut opt = Adam::new(model.parameters(), LR);
    let events = data.stream().events();
    let feats = data.features();
    let mut losses = Vec::new();
    for _ in 0..EPOCHS {
        model.reset_state();
        let mut start = 0;
        while start < events.len() {
            let end = (start + BATCH).min(events.len());
            let fwd = model.forward_batch(&events[start..end], start, feats);
            losses.push(fwd.loss.item());
            fwd.loss.backward();
            clip_grad_norm(&params, CLIP);
            opt.step();
            model.apply_batch(&events[start..end], start, feats, fwd.pending);
            cascade_tensor::arena::reset();
            start = end;
        }
    }
    SerialRun {
        losses,
        state: model.export_state(),
        opt_state: opt.export_state(),
    }
}

#[test]
fn n1_dist_is_bit_identical_to_serial() {
    let d = data();
    let serial = serial_reference(&d);
    let dist = train_dist(&d, &model_cfg(), &dist_cfg(1));

    let dist_losses: Vec<f32> = dist.batches.iter().map(|b| b.loss).collect();
    assert_eq!(
        dist_losses.len(),
        serial.losses.len(),
        "batch count differs"
    );
    for (i, (a, b)) in serial.losses.iter().zip(&dist_losses).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "batch {} loss diverged: serial {} vs dist {}",
            i,
            a,
            b
        );
    }
    // Parameters, node memories, last-update times, and mailboxes all
    // travel in the state blob — byte equality covers the lot.
    assert_eq!(serial.state, dist.state, "final model state diverged");
    assert_eq!(serial.opt_state, dist.optimizer, "optimizer state diverged");
}

/// One forward pass over a shared 1-shard plane produces bit-identical
/// logits to the monolithic plane (the loss equality above implies
/// this, but logits are part of the stated contract, so pin them
/// directly).
#[test]
fn n1_forward_logits_match_serial() {
    let d = data();
    let feat_dim = d.features().dim();
    let serial = MemoryTgnn::new(model_cfg(), d.num_nodes(), feat_dim, SEED);
    let geom = PlaneGeometry::for_config(&model_cfg(), d.num_nodes(), feat_dim, SEED);
    let shared = MemoryTgnn::with_plane(
        model_cfg(),
        feat_dim,
        SEED,
        Box::new(SharedPlane::new(&geom, 1)),
    );
    let events = &d.stream().events()[..BATCH];
    let a = serial.forward_batch(events, 0, d.features());
    let b = shared.forward_batch(events, 0, d.features());
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.pos_logits), bits(&b.pos_logits));
    assert_eq!(bits(&a.neg_logits), bits(&b.neg_logits));
    assert_eq!(a.loss.item().to_bits(), b.loss.item().to_bits());
    cascade_tensor::arena::reset();
}

#[test]
fn n2_is_reproducible_and_divergence_is_bounded() {
    let d = data();
    let serial = serial_reference(&d);
    let first = train_dist(&d, &model_cfg(), &dist_cfg(2));
    let second = train_dist(&d, &model_cfg(), &dist_cfg(2));

    // Seeded and schedule-independent: two runs agree bit-for-bit.
    assert_eq!(first.state, second.state, "N=2 runs diverged across runs");
    assert_eq!(first.optimizer, second.optimizer);
    let loss_bits = |o: &cascade_dist::DistOutcome| {
        o.batches
            .iter()
            .map(|b| (b.round, b.worker, b.loss.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(loss_bits(&first), loss_bits(&second));

    // The documented divergence model: N=2 reads one round of stale
    // memory and averages same-round gradients, so it differs from
    // serial — but must stay a *trained* model, not a broken one. Both
    // optimize the same objective on the same events; their final
    // epoch-mean losses land in the same regime.
    assert_ne!(
        first.state, serial.state,
        "N=2 should not equal serial bit-for-bit"
    );
    let serial_last = serial.losses[serial.losses.len() - serial.losses.len() / EPOCHS..]
        .iter()
        .map(|l| *l as f64)
        .sum::<f64>()
        / (serial.losses.len() / EPOCHS) as f64;
    let dist_last = *first
        .report
        .epoch_losses
        .last()
        .expect("dist reports one loss per epoch") as f64;
    assert!(
        dist_last.is_finite() && (dist_last - serial_last).abs() < 0.25,
        "bounded staleness should keep epoch loss near serial: serial {:.4}, dist {:.4}",
        serial_last,
        dist_last
    );
}
