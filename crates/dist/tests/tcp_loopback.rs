//! Multi-process transport equivalence: a 2-worker TCP-loopback run is
//! bit-identical to the 2-worker in-process run — same final state,
//! same optimizer, same per-batch loss bits on both processes. The
//! leader and follower here are threads for test convenience; they
//! share nothing but the socket, exactly like separate processes.

use std::net::TcpListener;

use cascade_dist::{run_follower, run_leader_on, train_dist, DistConfig, DistOutcome};
use cascade_models::ModelConfig;
use cascade_tgraph::{Dataset, SynthConfig};

fn data() -> Dataset {
    SynthConfig::wiki().with_scale(0.003).generate(29)
}

fn model_cfg() -> ModelConfig {
    ModelConfig::tgn().with_dims(8, 4)
}

fn dist_cfg() -> DistConfig {
    DistConfig {
        workers: 2,
        chunk_size: 128,
        batch_size: 64,
        epochs: 2,
        lr: 1e-3,
        clip_norm: Some(5.0),
        seed: 33,
    }
}

fn loss_bits(o: &DistOutcome) -> Vec<(usize, usize, u32)> {
    o.batches
        .iter()
        .map(|b| (b.round, b.worker, b.loss.to_bits()))
        .collect()
}

#[test]
fn tcp_loopback_matches_in_process() {
    let cfg = dist_cfg();
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind always succeeds");
    let addr = listener
        .local_addr()
        .expect("bound listener has an address")
        .to_string();

    let (leader_out, follower_out) = std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            let d = data();
            run_leader_on(listener, &d, &model_cfg(), &cfg)
        });
        let follower = scope.spawn(|| {
            // A separate Dataset instance: processes share no memory,
            // only the synth seed.
            let d = data();
            run_follower(&addr, 1, &d, &model_cfg(), &cfg)
        });
        (
            leader.join().expect("leader thread completes"),
            follower.join().expect("follower thread completes"),
        )
    });
    let leader_out = leader_out.expect("leader run succeeds");
    let follower_out = follower_out.expect("follower run succeeds");

    // Leader and follower converge to the same replica.
    assert_eq!(leader_out.state, follower_out.state, "replicas diverged");
    assert_eq!(leader_out.optimizer, follower_out.optimizer);
    assert_eq!(loss_bits(&leader_out), loss_bits(&follower_out));
    assert_eq!(
        leader_out.report.epoch_losses, follower_out.report.epoch_losses,
        "epoch telemetry diverged"
    );

    // And the TCP run reproduces the in-process run bit-for-bit.
    let inproc = train_dist(&data(), &model_cfg(), &cfg);
    assert_eq!(
        inproc.state, leader_out.state,
        "TCP and in-process transports diverged"
    );
    assert_eq!(inproc.optimizer, leader_out.optimizer);
    assert_eq!(loss_bits(&inproc), loss_bits(&leader_out));
    assert_eq!(inproc.report.events, leader_out.report.events);
}
