//! Quickstart: train TGN on a synthetic temporal graph with Cascade's
//! adaptive batching and compare against fixed-size batching.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cascade_core::{train, CascadeConfig, CascadeScheduler, FixedBatching, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::SynthConfig;

fn main() {
    // 1. A dynamic graph: the Wikipedia-profile generator scaled down to
    //    a few thousand events.
    let data = SynthConfig::wiki()
        .with_scale(0.02)
        .with_node_scale(0.05)
        .with_feature_dim(8)
        .generate(42);
    println!(
        "dataset: {} — {} nodes, {} events",
        data.name(),
        data.num_nodes(),
        data.num_events()
    );

    let train_cfg = TrainConfig {
        epochs: 3,
        lr: 1e-3,
        eval_batch_size: 64,
        clip_norm: Some(5.0),
        scale_lr_with_batch: true,
        ..TrainConfig::default()
    };

    // 2. Baseline: TGL-style fixed batching at the preset size.
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
        data.num_nodes(),
        data.features().dim(),
        7,
    );
    let mut fixed = FixedBatching::new(64).with_label("TGL");
    let baseline = train(&mut model, &data, &mut fixed, &train_cfg);
    println!(
        "\n[{}] {} batches, avg batch {:.0}, val loss {:.4}, wall {:?}",
        baseline.strategy,
        baseline.num_batches,
        baseline.avg_batch_size,
        baseline.val_loss,
        baseline.total_time
    );

    // 3. Cascade: dependency-aware adaptive batching. Same model weights
    //    (fresh seed), same training budget.
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
        data.num_nodes(),
        data.features().dim(),
        7,
    );
    let mut cascade = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    });
    let adaptive = train(&mut model, &data, &mut cascade, &train_cfg);
    println!(
        "[{}] {} batches, avg batch {:.0}, val loss {:.4}, wall {:?}",
        adaptive.strategy,
        adaptive.num_batches,
        adaptive.avg_batch_size,
        adaptive.val_loss,
        adaptive.total_time
    );

    println!(
        "\nCascade processed the same stream in {:.1}x fewer batches \
         (avg batch {:.0} vs {:.0}) at comparable loss ({:.4} vs {:.4}).",
        baseline.num_batches as f64 / adaptive.num_batches as f64,
        adaptive.avg_batch_size,
        baseline.avg_batch_size,
        adaptive.val_loss,
        baseline.val_loss,
    );
}
