//! A guided tour of Cascade's three mechanisms on the paper's own worked
//! example (Figures 7–9), then on a generated stream: dependency table,
//! last-tolerable-event lookup, SG-Filter relaxation, and ABS profiling.
//!
//! ```text
//! cargo run --release --example adaptive_batching_tour
//! ```

use cascade_core::{max_endurance_profiling, Abs, DependencyTable, SgFilter, TgDiffuser};
use cascade_models::MemoryDelta;
use cascade_tgraph::{Event, NodeId, SynthConfig};

fn main() {
    // ---- 1. The Figure 7 example -------------------------------------
    let pairs = [
        (1, 2),
        (1, 7),
        (1, 8),
        (1, 9),
        (10, 11),
        (10, 12),
        (10, 13),
        (10, 4),
        (1, 3),
        (1, 5),
        (1, 6),
        (3, 4),
    ];
    let events: Vec<Event> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
        .collect();

    let table = DependencyTable::build(&events, 14);
    println!("Dependency table (Figure 7a):");
    for n in [1u32, 2, 3, 10] {
        println!("  node {:>2}: {:?}", n, table.entry(NodeId(n)));
    }

    let mut diffuser = TgDiffuser::new(table.clone(), 4);
    let no_stable = vec![false; 14];
    let boundary = diffuser.next_boundary(0, events.len(), &no_stable);
    println!(
        "\nTG-Diffuser with Max_r = 4: first batch ends at event {} \
         (node 1's fifth relevant event — Figure 7b)",
        boundary
    );

    // SG-Filter: mark nodes 1, 2, 7 stable, as in Figure 8.
    let mut diffuser = TgDiffuser::new(table.clone(), 4);
    let mut stable = vec![false; 14];
    for n in [1, 2, 7] {
        stable[n] = true;
    }
    let relaxed = diffuser.next_boundary(0, events.len(), &stable);
    println!(
        "With nodes 1, 2, 7 stabilized the barrier moves to event {} \
         (Figure 8b)",
        relaxed
    );

    // ABS: Maximum Endurance Profiling at batch size 4 (Figure 9).
    let stats = max_endurance_profiling(&table, events.len(), 4, 0);
    println!(
        "\nABS profiling at batch size 4: mr_mean = {:.0}, batches = {} \
         (Figure 9); initial Max_r = {}",
        stats.mean,
        stats.batch_count,
        Abs::from_stats(stats).initial_max_r()
    );

    // ---- 2. The same machinery on a generated stream ------------------
    let data = SynthConfig::wiki()
        .with_scale(0.01)
        .with_node_scale(0.04)
        .with_feature_dim(0)
        .generate(3);
    let stream = data.stream().events();
    let table = DependencyTable::build(stream, data.num_nodes());
    let stats = max_endurance_profiling(&table, stream.len(), 64, 0);
    let abs = Abs::from_stats(stats);
    let mut diffuser = TgDiffuser::new(table, abs.initial_max_r());

    println!(
        "\nGenerated {}-event stream: mr(min/mean/max) = {}/{:.0}/{}, Max_r = {}",
        stream.len(),
        stats.min,
        stats.mean,
        stats.max,
        abs.initial_max_r()
    );

    let no_stable = vec![false; data.num_nodes()];
    let mut start = 0;
    let mut sizes = Vec::new();
    while start < stream.len() {
        let end = diffuser.next_boundary(start, stream.len(), &no_stable);
        sizes.push(end - start);
        start = end;
    }
    println!(
        "adaptive batches: {} (sizes min {} / avg {:.0} / max {}) vs fixed 64",
        sizes.len(),
        sizes.iter().min().unwrap(),
        stream.len() as f64 / sizes.len() as f64,
        sizes.iter().max().unwrap()
    );

    // SG-Filter on synthetic memory transitions.
    let mut filter = SgFilter::new(4, 0.9);
    filter.observe(&[
        MemoryDelta {
            node: NodeId(0),
            pre: vec![1.0, 0.0],
            post: vec![0.98, 0.05],
        },
        MemoryDelta {
            node: NodeId(1),
            pre: vec![1.0, 0.0],
            post: vec![0.0, 1.0],
        },
    ]);
    println!(
        "\nSG-Filter: node 0 stable = {}, node 1 stable = {} (θ = {})",
        filter.flags()[0],
        filter.flags()[1],
        filter.theta()
    );

    // Logarithmic decay under stalled loss (Equation 5).
    let mut abs = Abs::from_stats(stats);
    abs.on_batch(0, 1.0);
    for i in 1..200 {
        if let Some(r) = abs.on_batch(i, 1.0) {
            println!("ABS decay at batch {}: Max_r -> {}", i, r);
            if i > 100 {
                break;
            }
        }
    }
}
