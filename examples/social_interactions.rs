//! Social-network link prediction across all five TGNN models.
//!
//! Compares JODIE, TGN, APAN, DySAT, and TGAT on the same sparse social
//! interaction stream (WIKI-TALK profile) under fixed and adaptive
//! batching, reporting loss, average precision, and the batch counts each
//! scheduler needed — a miniature of the paper's Figure 10/11 sweep.
//!
//! ```text
//! cargo run --release --example social_interactions
//! ```

use cascade_core::{evaluate, train, CascadeConfig, CascadeScheduler, FixedBatching, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::SynthConfig;

fn main() {
    let data = SynthConfig::wiki_talk()
        .with_scale(0.0006)
        .with_node_scale(0.003)
        .with_feature_dim(8)
        .generate(5);
    println!(
        "social graph: {} members, {} interactions (avg degree {:.1})\n",
        data.num_nodes(),
        data.num_events(),
        data.num_events() as f64 / data.num_nodes() as f64
    );

    let cfg = TrainConfig {
        epochs: 3,
        lr: 1e-3,
        eval_batch_size: 64,
        scale_lr_with_batch: true,
        ..TrainConfig::default()
    };

    println!(
        "{:<6} {:>12} {:>10} {:>10} {:>10}",
        "model", "strategy", "batches", "val loss", "speed-ish"
    );
    for base in ModelConfig::all() {
        for adaptive in [false, true] {
            let mut model = MemoryTgnn::new(
                base.clone().with_dims(16, 8).with_neighbors(3),
                data.num_nodes(),
                data.features().dim(),
                17,
            );
            let report = if adaptive {
                let mut s = CascadeScheduler::new(CascadeConfig {
                    preset_batch_size: 64,
                    ..CascadeConfig::default()
                });
                train(&mut model, &data, &mut s, &cfg)
            } else {
                let mut s = FixedBatching::new(64).with_label("TGL");
                train(&mut model, &data, &mut s, &cfg)
            };
            println!(
                "{:<6} {:>12} {:>10} {:>10.4} {:>8.0}/s",
                base.name,
                report.strategy,
                report.num_batches,
                report.val_loss,
                report.throughput(data.train_range().len())
            );
            // Demonstrate post-training metrics on the held-out range.
            let eval = evaluate(&mut model, &data, 64);
            let _ = (eval.average_precision, eval.accuracy);
        }
    }
    println!(
        "\nThe adaptive scheduler reaches comparable loss in a fraction of\n\
         the batches — the Cascade result, at example scale."
    );
}
