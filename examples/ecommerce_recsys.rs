//! E-commerce recommendation scenario — the use case motivating the
//! paper's "stabilized node" observation (§1: a consistently popular
//! product keeps a stable state despite frequent purchases).
//!
//! Trains JODIE on a bipartite user–product interaction stream, watches
//! the SG-Filter's stable-node ratio climb as product embeddings settle,
//! and uses the trained model to rank candidate products for a user.
//!
//! ```text
//! cargo run --release --example ecommerce_recsys
//! ```

use cascade_core::{train_with_observer, CascadeConfig, CascadeScheduler, SgFilter, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_nn::Module;
use cascade_tgraph::{NodeId, SynthConfig};

fn main() {
    // A bipartite interaction graph in the spirit of the REDDIT/WIKI
    // datasets: ~90% "users" interacting with a catalog of "products".
    let mut profile = SynthConfig::reddit();
    profile.name = "ECOMMERCE".into();
    profile.item_fraction = 0.15;
    profile.repeat_prob = 0.7; // loyal customers
    let data = profile
        .with_scale(0.005)
        .with_node_scale(0.02)
        .with_feature_dim(8)
        .generate(11);

    let items_from = (data.num_nodes() as f64 * 0.85) as usize;
    println!(
        "catalog: {} products, {} users, {} purchase events",
        data.num_nodes() - items_from,
        items_from,
        data.num_events()
    );

    let mut model = MemoryTgnn::new(
        ModelConfig::jodie().with_dims(16, 8),
        data.num_nodes(),
        data.features().dim(),
        3,
    );
    println!("model: JODIE with {} parameters", model.parameter_count());

    let mut cascade = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    });

    // Track stability the same way the SG-Filter does, per epoch.
    let mut filter = SgFilter::new(data.num_nodes(), 0.9);
    let mut last_epoch = 0usize;
    let report = train_with_observer(
        &mut model,
        &data,
        &mut cascade,
        &TrainConfig {
            epochs: 4,
            lr: 1e-3,
            eval_batch_size: 64,
            scale_lr_with_batch: true,
            ..TrainConfig::default()
        },
        &mut |epoch, deltas| {
            if epoch != last_epoch {
                println!(
                    "epoch {}: {:.1}% of memory updates were stable",
                    last_epoch,
                    filter.epoch_stable_ratio() * 100.0
                );
                filter.reset();
                last_epoch = epoch;
            }
            filter.observe(deltas);
        },
    );
    println!(
        "epoch {}: {:.1}% of memory updates were stable",
        last_epoch,
        filter.epoch_stable_ratio() * 100.0
    );
    println!(
        "\ntrained in {} adaptive batches (avg {:.0} events), val loss {:.4}",
        report.num_batches, report.avg_batch_size, report.val_loss
    );

    // Rank candidate products for an active user with the trained link
    // predictor — the serving path a recommender built on this library
    // would use.
    let user = data.stream().event(data.num_events() - 1).src;
    let candidates: Vec<NodeId> = (items_from..data.num_nodes())
        .map(|p| NodeId(p as u32))
        .collect();
    let now = data.stream().event(data.num_events() - 1).time;
    let logits = model.score_links(user, &candidates, now, data.features());
    let mut scored: Vec<(NodeId, f32)> = candidates.into_iter().zip(logits).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 product recommendations for user {}:", user);
    for (p, s) in scored.iter().take(5) {
        println!("  product {}  (logit {:.3})", p, s);
    }
}
