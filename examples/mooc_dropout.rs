//! Student drop-out prediction on the MOOC profile — the node
//! *classification* task of Equation 1, built on Cascade-trained TGNN
//! embeddings.
//!
//! Pipeline: (1) self-supervised link-prediction training with adaptive
//! batching drives the node memories; (2) a [`NodeClassifier`] head is
//! trained on the resulting embeddings to predict which students drop out
//! (synthetic label: the student's last interaction falls in the first
//! 60% of the course timeline).
//!
//! ```text
//! cargo run --release --example mooc_dropout
//! ```

use cascade_core::{train, CascadeConfig, CascadeScheduler, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig, NodeClassifier};
use cascade_nn::{binary_accuracy, Adam, Module};
use cascade_tgraph::{NodeId, SynthConfig};

fn main() {
    let data = SynthConfig::mooc()
        .with_scale(0.008)
        .with_node_scale(0.05)
        .with_feature_dim(8)
        .generate(13);
    println!(
        "MOOC profile: {} nodes, {} interaction events",
        data.num_nodes(),
        data.num_events()
    );

    // ---- Stage 1: self-supervised TGNN training under Cascade ---------
    // JODIE fits this task: its time-decay embedding h = s ⊙ (1 + w·Δt)
    // explicitly encodes how long a student has been inactive — the
    // signal drop-out prediction needs (the very use case JODIE was
    // designed for).
    let mut model = MemoryTgnn::new(
        ModelConfig::jodie().with_dims(16, 8),
        data.num_nodes(),
        data.features().dim(),
        5,
    );
    let mut scheduler = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    });
    let report = train(
        &mut model,
        &data,
        &mut scheduler,
        &TrainConfig {
            epochs: 4,
            lr: 1e-3,
            eval_batch_size: 64,
            scale_lr_with_batch: true,
            ..TrainConfig::default()
        },
    );
    println!(
        "stage 1: {} adaptive batches (avg {:.0}), link-pred val loss {:.4}",
        report.num_batches, report.avg_batch_size, report.val_loss
    );

    // ---- Stage 2: drop-out labels and classifier ----------------------
    // A student "drops out" if their last interaction happens in the first
    // 60% of the course timeline.
    let horizon = data.stream().event(data.num_events() - 1).time * 0.6;
    let mut last_seen = vec![0.0f64; data.num_nodes()];
    for e in data.stream() {
        last_seen[e.src.index()] = e.time;
        last_seen[e.dst.index()] = e.time;
    }
    let students: Vec<NodeId> = (0..data.num_nodes() as u32)
        .map(NodeId)
        .filter(|n| last_seen[n.index()] > 0.0)
        .collect();
    let labels: Vec<f32> = students
        .iter()
        .map(|n| {
            if last_seen[n.index()] < horizon {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let dropouts = labels.iter().filter(|&&l| l > 0.5).count();
    println!(
        "stage 2: {} students, {} drop-outs ({:.0}%)",
        students.len(),
        dropouts,
        100.0 * dropouts as f64 / students.len() as f64
    );

    // Interleaved split of students for train/test (node ids correlate
    // with arrival time, so a chronological split would separate the
    // classes).
    let (mut train_s, mut test_s) = (Vec::new(), Vec::new());
    let (mut train_y, mut test_y) = (Vec::new(), Vec::new());
    for (i, (&n, &y)) in students.iter().zip(labels.iter()).enumerate() {
        if i % 4 == 3 {
            test_s.push(n);
            test_y.push(y);
        } else {
            train_s.push(n);
            train_y.push(y);
        }
    }
    let now = data.stream().event(data.num_events() - 1).time;

    let head = NodeClassifier::new(16, 21);
    let mut opt = Adam::new(head.parameters(), 3e-3);
    for epoch in 0..120 {
        let emb = model.embed_nodes(&train_s, now, data.features());
        let loss = head.loss(&emb.detach(), &train_y);
        loss.backward();
        opt.step();
        if epoch % 40 == 0 {
            println!(
                "  classifier epoch {:>2}: train loss {:.4}",
                epoch,
                loss.item()
            );
        }
    }

    let emb = model.embed_nodes(&test_s, now, data.features());
    let logits = head.forward(&emb.detach()).to_vec();
    let acc = binary_accuracy(&logits, &test_y);
    let base_rate = test_y
        .iter()
        .map(|&l| if l > 0.5 { 1.0 } else { 0.0 })
        .sum::<f32>()
        / test_y.len() as f32;
    println!(
        "\nheld-out drop-out accuracy: {:.1}% (majority-class baseline {:.1}%)",
        acc * 100.0,
        base_rate.max(1.0 - base_rate) * 100.0
    );
}
